//! The synchronous round executor.
//!
//! A [`Cluster`] owns the machines and the in-flight messages. Driving an
//! update means injecting external envelopes and running rounds until no
//! messages remain in flight; the executor meters every round.

use crate::machine::{Envelope, Machine};
#[cfg(test)]
use crate::machine::{Outbox, RoundCtx};
use crate::metrics::{BatchMetrics, RoundMetrics, UpdateMetrics, Violation};
use crate::parallel::step_machines;
use crate::{MachineId, Payload};
use std::collections::HashMap;

/// Cluster configuration: the DMPC model parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Machine memory / per-round send & receive cap `S`, in words.
    /// `None` disables capacity metering entirely (an explicitly unlimited
    /// cluster — no cap arithmetic happens, so nothing can wrap).
    pub capacity_words: Option<usize>,
    /// Safety limit on rounds per update (quiescence failure guard).
    pub max_rounds_per_update: usize,
    /// Record per-(src,dst) flows for the entropy metric (small overhead).
    pub track_flows: bool,
    /// Step machines on multiple threads (bit-identical to serial).
    pub parallel: bool,
    /// Thread count for parallel stepping (0 = available parallelism).
    pub threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            capacity_words: None,
            max_rounds_per_update: 10_000,
            track_flows: false,
            parallel: false,
            threads: 0,
        }
    }
}

impl ClusterConfig {
    /// A config enforcing machine capacity `s` words.
    pub fn with_capacity(s: usize) -> Self {
        ClusterConfig {
            capacity_words: Some(s),
            ..Default::default()
        }
    }
}

/// A set of machines plus in-flight messages.
pub struct Cluster<M: Machine> {
    machines: Vec<M>,
    pending: Vec<Envelope<M::Msg>>,
    cfg: ClusterConfig,
    /// Metrics of the most recent update.
    last_update: UpdateMetrics,
    rounds_total: u64,
}

impl<M: Machine> Cluster<M> {
    /// Creates a cluster over the given machine programs.
    pub fn new(machines: Vec<M>, cfg: ClusterConfig) -> Self {
        Cluster {
            machines,
            pending: Vec::new(),
            cfg,
            last_update: UpdateMetrics::default(),
            rounds_total: 0,
        }
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// The configured capacity `S` (`None` = unlimited).
    pub fn capacity_words(&self) -> Option<usize> {
        self.cfg.capacity_words
    }

    /// Immutable access to a machine's state (for result extraction — *not*
    /// part of the model; algorithms must not use this to cheat rounds).
    pub fn machine(&self, id: MachineId) -> &M {
        &self.machines[id as usize]
    }

    /// Mutable access for out-of-band initialization (bulk loading during
    /// preprocessing; metered separately by callers).
    pub fn machine_mut(&mut self, id: MachineId) -> &mut M {
        &mut self.machines[id as usize]
    }

    /// Iterate over all machines.
    pub fn machines(&self) -> impl Iterator<Item = &M> {
        self.machines.iter()
    }

    /// Queues an external message (the arriving update) for delivery in the
    /// first round of the next `run_update` call.
    pub fn inject(&mut self, to: MachineId, msg: M::Msg) {
        self.pending.push(Envelope {
            from: Envelope::<M::Msg>::EXTERNAL,
            to,
            msg,
        });
    }

    /// Runs rounds until quiescence (no messages in flight) and returns the
    /// update's metrics. Also retains them as [`Cluster::last_metrics`].
    pub fn run_update(&mut self) -> UpdateMetrics {
        let mut metrics = UpdateMetrics::default();
        let mut round: u32 = 0;
        while !self.pending.is_empty() {
            if metrics.rounds >= self.cfg.max_rounds_per_update {
                metrics.violations.push(Violation::RoundLimit {
                    limit: self.cfg.max_rounds_per_update,
                });
                self.pending.clear();
                break;
            }
            round += 1;
            let rm = self.step_round(round, &mut metrics);
            metrics.rounds += 1;
            metrics.max_active_machines = metrics.max_active_machines.max(rm.active_machines);
            metrics.max_words_per_round = metrics.max_words_per_round.max(rm.words);
            metrics.total_words += rm.words;
            metrics.total_messages += rm.messages;
            metrics.per_round.push(rm);
        }
        self.rounds_total += metrics.rounds as u64;
        self.last_update = metrics.clone();
        metrics
    }

    /// Queues many external messages at once; they are all delivered in the
    /// first round of the next run (the batch seeds round 0 together).
    pub fn inject_batch<I>(&mut self, injections: I)
    where
        I: IntoIterator<Item = (MachineId, M::Msg)>,
    {
        for (to, msg) in injections {
            self.inject(to, msg);
        }
    }

    /// Batch entry point: seeds every injection in round 0, drives the whole
    /// batch to quiescence as *one* metered run, and reports the combined
    /// cost amortized over `updates` logical updates — rounds, machines and
    /// communication under the combined load, capacity violations included.
    pub fn run_batch<I>(&mut self, injections: I, updates: usize) -> BatchMetrics
    where
        I: IntoIterator<Item = (MachineId, M::Msg)>,
    {
        self.inject_batch(injections);
        let m = self.run_update();
        BatchMetrics::from_run(updates, &m)
    }

    /// Metrics of the most recent update.
    pub fn last_metrics(&self) -> &UpdateMetrics {
        &self.last_update
    }

    /// Total rounds executed over the cluster's lifetime.
    pub fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    /// Executes one synchronous round: deliver pending messages grouped by
    /// receiver, step each receiver once, collect new outboxes.
    fn step_round(&mut self, round: u32, update: &mut UpdateMetrics) -> RoundMetrics {
        let delivered = std::mem::take(&mut self.pending);

        // Group by receiver; deterministic order: stable sort by (to, from).
        let mut inboxes: HashMap<MachineId, Vec<Envelope<M::Msg>>> = HashMap::new();
        let mut rm = RoundMetrics {
            round,
            ..Default::default()
        };
        let mut recv_words: HashMap<MachineId, usize> = HashMap::new();
        for env in delivered {
            let w = env.msg.size_words();
            // External injections are not machine-to-machine communication.
            if env.from != Envelope::<M::Msg>::EXTERNAL {
                rm.words += w;
                rm.messages += 1;
                *recv_words.entry(env.to).or_default() += w;
                if self.cfg.track_flows {
                    *update.flows.entry((env.from, env.to)).or_default() += w as u64;
                }
            }
            inboxes.entry(env.to).or_default().push(env);
        }
        for (&m, &w) in &recv_words {
            rm.max_recv_words = rm.max_recv_words.max(w);
            if let Some(cap) = self.cfg.capacity_words {
                if w > cap {
                    update.violations.push(Violation::RecvCap {
                        machine: m,
                        words: w,
                        cap,
                        round,
                    });
                }
            }
        }

        // Deterministic processing order.
        let mut groups: Vec<(usize, Vec<Envelope<M::Msg>>)> = inboxes
            .into_iter()
            .map(|(to, mut msgs)| {
                msgs.sort_by_key(|e| e.from);
                (to as usize, msgs)
            })
            .collect();
        groups.sort_by_key(|g| g.0);
        rm.active_machines = groups.len();

        let n_machines = self.machines.len();
        let threads = if self.cfg.parallel {
            if self.cfg.threads == 0 {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            } else {
                self.cfg.threads
            }
        } else {
            1
        };
        let stepped: Vec<usize> = groups.iter().map(|g| g.0).collect();
        let outputs = step_machines(&mut self.machines, groups, round, n_machines, threads);

        // Send-cap accounting + new pending.
        for (sender, envs) in outputs {
            let sent: usize = envs.iter().map(|e| e.msg.size_words()).sum();
            rm.max_send_words = rm.max_send_words.max(sent);
            if let Some(cap) = self.cfg.capacity_words {
                if sent > cap {
                    update.violations.push(Violation::SendCap {
                        machine: sender as MachineId,
                        words: sent,
                        cap,
                        round,
                    });
                }
            }
            self.pending.extend(envs);
        }

        // Memory accounting for the machines that acted this round.
        if let Some(cap) = self.cfg.capacity_words {
            for idx in stepped {
                let words = self.machines[idx].memory_words();
                if words > cap {
                    update.violations.push(Violation::Memory {
                        machine: idx as MachineId,
                        words,
                        cap,
                        round,
                    });
                }
            }
        }
        rm
    }
}

/// Convenience: inject a single message and drive it to quiescence.
pub fn run_single_update<M: Machine>(
    cluster: &mut Cluster<M>,
    to: MachineId,
    msg: M::Msg,
) -> UpdateMetrics {
    cluster.inject(to, msg);
    cluster.run_update()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relays a countdown token to the next machine until it hits zero.
    struct Relay {
        id: MachineId,
        seen: u64,
    }

    impl Machine for Relay {
        type Msg = u64;

        fn on_messages(
            &mut self,
            ctx: &RoundCtx,
            inbox: Vec<Envelope<u64>>,
            out: &mut Outbox<u64>,
        ) {
            for env in inbox {
                self.seen += 1;
                if env.msg > 0 {
                    let next = (self.id + 1) % ctx.n_machines as MachineId;
                    out.send(next, env.msg - 1);
                }
            }
        }

        fn memory_words(&self) -> usize {
            2
        }
    }

    fn relay_cluster(n: usize, cfg: ClusterConfig) -> Cluster<Relay> {
        let machines = (0..n as MachineId)
            .map(|id| Relay { id, seen: 0 })
            .collect();
        Cluster::new(machines, cfg)
    }

    #[test]
    fn token_ring_rounds_counted() {
        let mut c = relay_cluster(4, ClusterConfig::default());
        let m = run_single_update(&mut c, 0, 5);
        // Round 1 delivers the injection, rounds 2..6 relay 4,3,2,1,0.
        assert_eq!(m.rounds, 6);
        assert_eq!(m.max_active_machines, 1);
        // Injection itself is free; five relayed messages of one word each.
        assert_eq!(m.total_words, 5);
        assert!(m.clean());
    }

    #[test]
    fn batch_injection_shares_rounds() {
        // Two tokens run in the same quiescence run: rounds are the max of
        // the two chains, not the sum, and the cost is amortized over k=2.
        let mut c = relay_cluster(4, ClusterConfig::default());
        let b = c.run_batch([(0, 5u64), (1, 3u64)], 2);
        assert_eq!(b.updates, 2);
        assert_eq!(b.rounds, 6); // max(6, 4), not 6 + 4
        assert_eq!(b.total_words, 8); // 5 + 3 relayed words
        assert!((b.amortized_rounds() - 3.0).abs() < 1e-9);
        assert!(b.clean());

        // The looped equivalent pays the rounds serially.
        let mut c2 = relay_cluster(4, ClusterConfig::default());
        let mut looped = BatchMetrics::default();
        looped.absorb_update(&run_single_update(&mut c2, 0, 5));
        looped.absorb_update(&run_single_update(&mut c2, 1, 3));
        assert_eq!(looped.rounds, 10);
        assert!(looped.amortized_rounds() > b.amortized_rounds());
    }

    #[test]
    fn quiescent_cluster_runs_zero_rounds() {
        let mut c = relay_cluster(3, ClusterConfig::default());
        let m = c.run_update();
        assert_eq!(m.rounds, 0);
        assert!(m.clean());
    }

    #[test]
    fn round_limit_violation_recorded() {
        struct Forever;
        impl Machine for Forever {
            type Msg = u64;
            fn on_messages(
                &mut self,
                ctx: &RoundCtx,
                _i: Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) {
                out.send(ctx.self_id, 1);
            }
        }
        let mut c = Cluster::new(
            vec![Forever],
            ClusterConfig {
                max_rounds_per_update: 10,
                ..Default::default()
            },
        );
        let m = run_single_update(&mut c, 0, 1);
        assert!(matches!(
            m.violations[0],
            Violation::RoundLimit { limit: 10 }
        ));
    }

    #[test]
    fn send_cap_violation_recorded() {
        struct Blaster;
        impl Machine for Blaster {
            type Msg = Vec<u64>;
            fn on_messages(
                &mut self,
                _c: &RoundCtx,
                inbox: Vec<Envelope<Vec<u64>>>,
                out: &mut Outbox<Vec<u64>>,
            ) {
                if inbox[0].from == Envelope::<Vec<u64>>::EXTERNAL {
                    out.send(1, vec![0; 100]);
                }
            }
        }
        let mut c = Cluster::new(vec![Blaster, Blaster], ClusterConfig::with_capacity(10));
        let m = run_single_update(&mut c, 0, vec![1]);
        assert!(m.violations.iter().any(|v| matches!(
            v,
            Violation::SendCap {
                machine: 0,
                words: 100,
                ..
            }
        )));
        assert!(m.violations.iter().any(|v| matches!(
            v,
            Violation::RecvCap {
                machine: 1,
                words: 100,
                ..
            }
        )));
    }

    #[test]
    fn flows_tracked_when_enabled() {
        let cfg = ClusterConfig {
            track_flows: true,
            ..Default::default()
        };
        let mut c = relay_cluster(3, cfg);
        let m = run_single_update(&mut c, 0, 3);
        // 0->1, 1->2, 2->0 one word each.
        assert_eq!(m.flows.len(), 3);
        assert!((m.flow_entropy_bits() - (3f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn broadcast_activates_all_machines() {
        struct Hub;
        impl Machine for Hub {
            type Msg = u64;
            fn on_messages(
                &mut self,
                ctx: &RoundCtx,
                inbox: Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) {
                for env in inbox {
                    if env.from == Envelope::<u64>::EXTERNAL {
                        out.broadcast(ctx.n_machines, 0);
                    }
                }
            }
        }
        let mut c = Cluster::new((0..8).map(|_| Hub).collect(), ClusterConfig::default());
        let m = run_single_update(&mut c, 0, 9);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.max_active_machines, 7); // round 2: everyone but the hub
        assert_eq!(m.total_words, 7);
    }
}
