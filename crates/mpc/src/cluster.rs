//! The synchronous round executor.
//!
//! A [`Cluster`] owns the machines and the in-flight messages. Driving an
//! update means injecting external envelopes and running rounds until no
//! messages remain in flight; the executor meters every round.
//!
//! # Hot-path design
//!
//! Routing a round is a single stable linear-time sort of the pending
//! envelope buffer into `(to, from, injection order)` order, after which
//! every active machine's inbox is one contiguous slice — no per-round
//! hash maps, no per-receiver vectors, no per-group comparison sort. All
//! scratch (the pending/delivered double buffer, the counting-sort
//! histogram and scatter target, the group index, per-worker inbox/outbox
//! buffers) is owned by the cluster and reused across rounds, updates and
//! batches, so a steady-state round performs **zero heap allocation** for
//! routing (verified by an allocation-counting test). See
//! `docs/ARCHITECTURE.md` ("Executor internals") for the full lifecycle
//! and the determinism argument.

use crate::chaos::{ChaosKind, ChaosPlan};
use crate::machine::{Envelope, Machine, Payload as _, Scheduler};
use crate::metrics::{BatchMetrics, RoundMetrics, UpdateMetrics, Violation};
use crate::parallel::{step_scope, worker_task, Group, StepEnv, WorkerScratch};
use crate::pool::WorkerPool;
use crate::MachineId;

/// Which machine-stepping backend drives a round. All three are
/// bit-identical in observable behaviour (machine states and metrics);
/// they differ only in wall-clock cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Step every active machine on the calling thread.
    #[default]
    Serial,
    /// Legacy parallel backend: spawn scoped threads every round
    /// (`std::thread::scope`). Kept for differential testing.
    ScopeThreads,
    /// Persistent worker pool: threads are created once per cluster and
    /// reused across all rounds, updates and batches.
    WorkerPool,
}

/// Executor tuning knobs, orthogonal to the DMPC model parameters. Drivers
/// accept these so benches can select a backend or trim metering overhead
/// without touching the algorithm's model configuration (capacity, round
/// limits).
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// The stepping backend.
    pub backend: Backend,
    /// Thread count for parallel backends (0 = available parallelism).
    pub threads: usize,
    /// Record per-round detail in [`UpdateMetrics::per_round`].
    pub record_per_round: bool,
    /// Overrides `(src,dst)` flow tracking (the Section 8 entropy metric)
    /// when `Some`; `None` leaves the config's own setting untouched, so
    /// picking a backend never silently changes what gets metered. Flow
    /// tracking costs a hash-map update per delivered message, so
    /// timing-focused runs force it off via [`ExecOptions::lean`].
    pub track_flows: Option<bool>,
    /// How batch pipelines schedule leftover structural items (see
    /// [`Scheduler`]): conflict-group lanes by default, one serialized lane
    /// for differential testing. Bit-identical outcomes either way.
    pub scheduler: Scheduler,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            backend: Backend::Serial,
            threads: 0,
            record_per_round: true,
            track_flows: None,
            scheduler: Scheduler::default(),
        }
    }
}

impl ExecOptions {
    /// Serial stepping with aggregates only — per-round detail and flow
    /// tracking off. The fastest profile for long bench streams that never
    /// look at per-round detail or entropy.
    pub fn lean() -> Self {
        ExecOptions {
            record_per_round: false,
            track_flows: Some(false),
            ..Default::default()
        }
    }

    /// The given parallel backend with `threads` workers (0 = all cores).
    pub fn parallel(backend: Backend, threads: usize) -> Self {
        ExecOptions {
            backend,
            threads,
            ..Default::default()
        }
    }
}

/// Cluster configuration: the DMPC model parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Machine memory / per-round send & receive cap `S`, in words.
    /// `None` disables capacity metering entirely (an explicitly unlimited
    /// cluster — no cap arithmetic happens, so nothing can wrap).
    pub capacity_words: Option<usize>,
    /// Safety limit on rounds per update (quiescence failure guard).
    pub max_rounds_per_update: usize,
    /// Record per-(src,dst) flows for the entropy metric (small overhead).
    pub track_flows: bool,
    /// Machine-stepping backend (bit-identical across all choices).
    pub backend: Backend,
    /// Thread count for parallel stepping (0 = available parallelism).
    pub threads: usize,
    /// Record per-round detail in [`UpdateMetrics::per_round`]. Long churn
    /// streams that only need aggregates can switch this off; `rounds` and
    /// `total_words` are identical either way.
    pub record_per_round: bool,
    /// Optional chaos fault-injection plan. The cluster only *stores* it
    /// (and drops messages to machines killed via [`Cluster::kill`]);
    /// harnesses read the plan and apply its events between batches, so an
    /// idle plan costs nothing on the executor hot path.
    pub chaos: Option<ChaosPlan>,
    /// Batch structural scheduler (see [`Scheduler`]). The executor never
    /// reads this — machine programs running a batch pipeline do — but it
    /// rides in the config so every driver constructor threads it for free.
    pub scheduler: Scheduler,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            capacity_words: None,
            max_rounds_per_update: 10_000,
            track_flows: false,
            backend: Backend::Serial,
            threads: 0,
            record_per_round: true,
            chaos: None,
            scheduler: Scheduler::default(),
        }
    }
}

impl ClusterConfig {
    /// A config enforcing machine capacity `s` words.
    pub fn with_capacity(s: usize) -> Self {
        ClusterConfig {
            capacity_words: Some(s),
            ..Default::default()
        }
    }

    /// Overlays executor tuning on this config. `track_flows` is only
    /// touched when the options carry an explicit override.
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.backend = exec.backend;
        self.threads = exec.threads;
        self.record_per_round = exec.record_per_round;
        self.scheduler = exec.scheduler;
        if let Some(flows) = exec.track_flows {
            self.track_flows = flows;
        }
        self
    }

    /// Attaches a chaos fault-injection plan (see [`crate::chaos`]).
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }
}

/// A set of machines plus in-flight messages and the executor's reusable
/// scratch state (see the module docs for the buffer lifecycle).
pub struct Cluster<M: Machine> {
    machines: Vec<M>,
    cfg: ClusterConfig,
    rounds_total: u64,
    /// Messages queued for delivery at the start of the next round.
    pending: Vec<Envelope<M::Msg>>,
    /// Double buffer: swapped with `pending` each round, then sorted so
    /// every inbox is a contiguous run.
    delivered: Vec<Envelope<M::Msg>>,
    /// Counting-sort scatter target (swapped with `delivered`).
    sort_aux: Vec<Envelope<M::Msg>>,
    /// Counting-sort histogram / offset table.
    counts: Vec<usize>,
    /// Active machines this round, each with its run in `delivered`.
    groups: Vec<Group>,
    /// Per-machine epoch stamps for the distinct-machines-touched counter:
    /// `touch_stamp[m] == update_epoch` iff machine `m` was already counted
    /// for the current update. Epoch bumping makes the buffer reusable
    /// across updates without clearing (zero-alloc steady state).
    touch_stamp: Vec<u64>,
    /// Current update's epoch (bumped by every `run_update`).
    update_epoch: u64,
    /// Liveness flags for the chaos plane (`true` = accepting messages).
    alive: Vec<bool>,
    /// Count of dead machines — the steady-state fast path is one integer
    /// compare per round, so an idle chaos plane stays allocation-free.
    dead_count: usize,
    /// In-round chaos events armed for the *next* quiescence run, as
    /// `(round, kind)` pairs; fired at the start of the matching round and
    /// cleared when the run ends (epoch fencing — armed events never leak
    /// into a later epoch). Empty in steady state: the idle check is one
    /// `is_empty` branch per round.
    armed: Vec<(u32, ChaosKind)>,
    /// Per-machine epoch stamps marking *mid-flight* kills:
    /// `lost_stamp[m] == update_epoch` iff machine `m` was killed inside
    /// the current run, so messages dropped at its door are quarantined as
    /// [`Violation::LostInFlight`] (exactly accounted) rather than flagged
    /// as [`Violation::DeadMachine`] protocol bugs.
    lost_stamp: Vec<u64>,
    /// Per-worker reusable buffers (index 0 doubles as the serial lane).
    workers: Vec<WorkerScratch<M::Msg>>,
    /// Persistent threads (only for [`Backend::WorkerPool`]).
    pool: Option<WorkerPool>,
    /// Resolved worker-thread count for parallel backends.
    threads: usize,
}

impl<M: Machine> Cluster<M> {
    /// Creates a cluster over the given machine programs. For
    /// [`Backend::WorkerPool`] the worker threads are spawned here, once,
    /// and reused for every subsequent round.
    pub fn new(machines: Vec<M>, cfg: ClusterConfig) -> Self {
        let threads = match cfg.backend {
            Backend::Serial => 1,
            Backend::ScopeThreads | Backend::WorkerPool => {
                if cfg.threads == 0 {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                } else {
                    cfg.threads
                }
            }
        };
        let pool =
            (cfg.backend == Backend::WorkerPool && threads > 1).then(|| WorkerPool::new(threads));
        let mut workers = Vec::new();
        workers.resize_with(threads.max(1), WorkerScratch::default);
        let touch_stamp = vec![0; machines.len()];
        let lost_stamp = vec![0; machines.len()];
        let alive = vec![true; machines.len()];
        Cluster {
            machines,
            cfg,
            rounds_total: 0,
            pending: Vec::new(),
            delivered: Vec::new(),
            sort_aux: Vec::new(),
            counts: Vec::new(),
            groups: Vec::new(),
            touch_stamp,
            update_epoch: 0,
            alive,
            dead_count: 0,
            armed: Vec::new(),
            lost_stamp,
            workers,
            pool,
            threads,
        }
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// The configured capacity `S` (`None` = unlimited).
    pub fn capacity_words(&self) -> Option<usize> {
        self.cfg.capacity_words
    }

    /// Immutable access to a machine's state (for result extraction — *not*
    /// part of the model; algorithms must not use this to cheat rounds).
    pub fn machine(&self, id: MachineId) -> &M {
        &self.machines[id as usize]
    }

    /// Mutable access for out-of-band initialization (bulk loading during
    /// preprocessing; metered separately by callers).
    pub fn machine_mut(&mut self, id: MachineId) -> &mut M {
        &mut self.machines[id as usize]
    }

    /// Iterate over all machines.
    pub fn machines(&self) -> impl Iterator<Item = &M> {
        self.machines.iter()
    }

    /// Fail-stop machine `m` (chaos plane): until [`Cluster::revive`], every
    /// message addressed to it is dropped and recorded as
    /// [`Violation::DeadMachine`]. The machine's program state is untouched
    /// here — drivers wipe and later restore it.
    pub fn kill(&mut self, m: MachineId) {
        if std::mem::replace(&mut self.alive[m as usize], false) {
            self.dead_count += 1;
        }
    }

    /// Marks machine `m` as accepting messages again. Must precede the
    /// recovery handoff that rebuilds its state.
    pub fn revive(&mut self, m: MachineId) {
        if !std::mem::replace(&mut self.alive[m as usize], true) {
            self.dead_count -= 1;
        }
    }

    /// True if machine `m` currently accepts messages.
    pub fn is_alive(&self, m: MachineId) -> bool {
        self.alive[m as usize]
    }

    /// True when no machine is killed.
    pub fn all_alive(&self) -> bool {
        self.dead_count == 0
    }

    /// The attached chaos plan, if any (harnesses read it; the executor
    /// never schedules events itself).
    pub fn chaos_plan(&self) -> Option<&ChaosPlan> {
        self.cfg.chaos.as_ref()
    }

    /// The current update epoch: bumped at the start of every quiescence
    /// run, so each [`Cluster::run_update`]/[`Cluster::run_batch`] call is
    /// fenced by a distinct epoch. Harnesses stamp frontier snapshots and
    /// abort records with this value.
    pub fn epoch(&self) -> u64 {
        self.update_epoch
    }

    /// The configured quiescence cap (the legal range of in-round chaos
    /// offsets is `1..=round_limit()`).
    pub fn round_limit(&self) -> usize {
        self.cfg.max_rounds_per_update
    }

    /// Arms a mid-flight chaos event: `kind` fires at the *start* of round
    /// `at_round` (1-based) of the next quiescence run. A killed machine is
    /// fail-stopped before it processes that round's inbox — its previous
    /// round's sends still deliver, and everything addressed to it from
    /// `at_round` on is quarantined as [`Violation::LostInFlight`] with
    /// exact word counts. Armed events that never fire (the run quiesces
    /// first) are discarded when the run ends: arming is per-epoch, never
    /// carried across runs.
    ///
    /// Only kills and revives can fire mid-round; reshapes need a
    /// quiescent cluster (validated up front by
    /// [`crate::ChaosPlan::validate`], enforced here for hand-armed
    /// events).
    pub fn arm_in_round(&mut self, at_round: u32, kind: ChaosKind) {
        assert!(
            matches!(kind, ChaosKind::Kill(_) | ChaosKind::Revive(_)),
            "only Kill/Revive can fire mid-round, got {kind:?}"
        );
        self.armed.push((at_round, kind));
    }

    /// Number of armed mid-flight events not yet fired this run.
    pub fn armed_len(&self) -> usize {
        self.armed.len()
    }

    /// Queues an external message (the arriving update) for delivery in the
    /// first round of the next `run_update` call.
    pub fn inject(&mut self, to: MachineId, msg: M::Msg) {
        self.pending.push(Envelope {
            from: Envelope::<M::Msg>::EXTERNAL,
            to,
            msg,
        });
    }

    /// Runs rounds until quiescence (no messages in flight) and returns the
    /// update's metrics.
    pub fn run_update(&mut self) -> UpdateMetrics {
        let mut metrics = UpdateMetrics::default();
        let mut round: u32 = 0;
        self.update_epoch += 1;
        while !self.pending.is_empty() {
            if metrics.rounds >= self.cfg.max_rounds_per_update {
                metrics.violations.push(Violation::RoundLimit {
                    limit: self.cfg.max_rounds_per_update,
                });
                self.pending.clear();
                break;
            }
            round += 1;
            let rm = self.step_round(round, &mut metrics);
            metrics.rounds += 1;
            metrics.max_active_machines = metrics.max_active_machines.max(rm.active_machines);
            metrics.max_words_per_round = metrics.max_words_per_round.max(rm.words);
            metrics.total_words += rm.words;
            metrics.total_messages += rm.messages;
            if self.cfg.record_per_round {
                metrics.per_round.push(rm);
            }
        }
        // Epoch fence: armed mid-flight events are scoped to this run.
        // Events that never fired (the run quiesced before their round)
        // are discarded, not deferred — a later epoch starts clean.
        if !self.armed.is_empty() {
            self.armed.clear();
        }
        self.rounds_total += metrics.rounds as u64;
        metrics
    }

    /// Queues many external messages at once; they are all delivered in the
    /// first round of the next run (the batch seeds round 0 together).
    pub fn inject_batch<I>(&mut self, injections: I)
    where
        I: IntoIterator<Item = (MachineId, M::Msg)>,
    {
        for (to, msg) in injections {
            self.inject(to, msg);
        }
    }

    /// Batch entry point: seeds every injection in round 0, drives the whole
    /// batch to quiescence as *one* metered run, and reports the combined
    /// cost amortized over `updates` logical updates — rounds, machines and
    /// communication under the combined load, capacity violations included.
    pub fn run_batch<I>(&mut self, injections: I, updates: usize) -> BatchMetrics
    where
        I: IntoIterator<Item = (MachineId, M::Msg)>,
    {
        self.inject_batch(injections);
        let m = self.run_update();
        BatchMetrics::from_run(updates, &m)
    }

    /// Total rounds executed over the cluster's lifetime.
    pub fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    /// Sum of every machine's resident memory, in words — the wall-clock
    /// benchmarks' peak-RSS proxy (sampled between runs, not metered).
    pub fn resident_words(&self) -> usize {
        self.machines.iter().map(|m| m.memory_words()).sum()
    }

    /// Executes one synchronous round: sorts pending messages into
    /// contiguous per-receiver runs, steps each receiver once, collects the
    /// new outboxes — all on reused scratch buffers.
    fn step_round(&mut self, round: u32, update: &mut UpdateMetrics) -> RoundMetrics {
        // `delivered` was left empty (with capacity) by the previous round;
        // after the swap it holds this round's messages and `pending` is the
        // empty buffer that will collect the next round's.
        std::mem::swap(&mut self.pending, &mut self.delivered);
        // Fire armed mid-flight chaos events scheduled for this round. A
        // kill lands *before* the inbox drop below, so the victim never
        // processes this round — fail-stop semantics: its previous round's
        // sends deliver, its queued inbox quarantines.
        if !self.armed.is_empty() {
            let mut i = 0;
            while i < self.armed.len() {
                if self.armed[i].0 == round {
                    let (_, kind) = self.armed.swap_remove(i);
                    match kind {
                        ChaosKind::Kill(m) => {
                            self.kill(m);
                            self.lost_stamp[m as usize] = self.update_epoch;
                        }
                        ChaosKind::Revive(m) => self.revive(m),
                        _ => unreachable!("arm_in_round rejects reshapes"),
                    }
                } else {
                    i += 1;
                }
            }
        }
        // Messages to killed machines are dropped before routing, one
        // recorded violation each: `LostInFlight` (with exact word counts)
        // when the machine died mid-flight this epoch, `DeadMachine` (a
        // protocol bug) when it was already dead at the epoch's start.
        // `mem::take` sidesteps the closure's borrow of `delivered` without
        // allocating (the buffers go back after).
        if self.dead_count > 0 {
            let epoch = self.update_epoch;
            let alive = std::mem::take(&mut self.alive);
            let lost = std::mem::take(&mut self.lost_stamp);
            self.delivered.retain(|e| {
                let ok = alive[e.to as usize];
                if !ok {
                    if lost[e.to as usize] == epoch {
                        let external = e.from == Envelope::<M::Msg>::EXTERNAL;
                        let words = e.msg.size_words();
                        if !external {
                            update.lost_words += words;
                            update.lost_messages += 1;
                        }
                        update.violations.push(Violation::LostInFlight {
                            machine: e.to,
                            round,
                            words,
                            external,
                        });
                    } else {
                        update.violations.push(Violation::DeadMachine {
                            machine: e.to,
                            round,
                        });
                    }
                }
                ok
            });
            self.alive = alive;
            self.lost_stamp = lost;
        }
        self.sort_delivered();

        let mut rm = RoundMetrics {
            round,
            ..Default::default()
        };

        // Walk the (to, from)-sorted runs: build the group index and meter
        // receive volumes in one pass.
        self.groups.clear();
        let cap = self.cfg.capacity_words;
        let mut i = 0usize;
        while i < self.delivered.len() {
            let to = self.delivered[i].to;
            let start = i;
            let mut recv = 0usize;
            while i < self.delivered.len() && self.delivered[i].to == to {
                let env = &self.delivered[i];
                // External injections are not machine-to-machine traffic.
                if env.from != Envelope::<M::Msg>::EXTERNAL {
                    let w = env.msg.size_words();
                    rm.words += w;
                    rm.messages += 1;
                    recv += w;
                    if self.cfg.track_flows {
                        *update.flows.entry((env.from, to)).or_default() += w as u64;
                    }
                }
                i += 1;
            }
            rm.max_recv_words = rm.max_recv_words.max(recv);
            if let Some(cap) = cap {
                if recv > cap {
                    update.violations.push(Violation::RecvCap {
                        machine: to,
                        words: recv,
                        cap,
                        round,
                    });
                }
            }
            if self.touch_stamp[to as usize] != self.update_epoch {
                self.touch_stamp[to as usize] = self.update_epoch;
                update.machines_touched += 1;
            }
            self.groups.push(Group {
                machine: to,
                start,
                len: i - start,
            });
        }
        rm.active_machines = self.groups.len();

        // Step the active machines over contiguous group chunks.
        let used = match self.cfg.backend {
            Backend::Serial => 1,
            Backend::ScopeThreads | Backend::WorkerPool => {
                self.threads.min(self.groups.len()).max(1)
            }
        };
        let env = StepEnv {
            machines: self.machines.as_mut_ptr(),
            n_machines: self.machines.len(),
            workers: self.workers.as_mut_ptr(),
            delivered: self.delivered.as_ptr(),
            groups: &self.groups,
            chunk: self.groups.len().div_ceil(used),
            round,
        };
        // Release ownership of the delivered envelopes: each group slot is
        // moved out exactly once by the worker that owns the group (see
        // `worker_task`'s safety contract). A mid-step panic leaks the
        // not-yet-read remainder, which is safe.
        unsafe { self.delivered.set_len(0) };
        if used == 1 {
            // Fast lane for serial stepping (also covers 1-thread pools).
            unsafe { worker_task(&env, 0) };
        } else {
            match self.cfg.backend {
                Backend::Serial => unreachable!("serial uses one worker"),
                Backend::ScopeThreads => step_scope(&env, used),
                Backend::WorkerPool => {
                    let pool = self.pool.as_mut().expect("pool exists when threads > 1");
                    pool.execute(used, &|t| unsafe { worker_task(&env, t) });
                }
            }
        }

        // Merge per-worker outputs in worker order (= ascending machine
        // order), meter send volumes, and queue the next round.
        for t in 0..used {
            let w = &mut self.workers[t];
            for &(machine, sent) in &w.sent {
                update.total_words_sent += sent;
                rm.max_send_words = rm.max_send_words.max(sent);
                if let Some(cap) = cap {
                    if sent > cap {
                        update.violations.push(Violation::SendCap {
                            machine,
                            words: sent,
                            cap,
                            round,
                        });
                    }
                }
            }
            self.pending.append(&mut w.out);
        }

        // Memory accounting for the machines that acted this round.
        if let Some(cap) = cap {
            for g in &self.groups {
                let words = self.machines[g.machine as usize].memory_words();
                if words > cap {
                    update.violations.push(Violation::Memory {
                        machine: g.machine,
                        words,
                        cap,
                        round,
                    });
                }
            }
        }
        rm
    }

    /// Sorts `delivered` into `(to, from, injection order)` order — the
    /// documented inbox order — using stable counting sorts on reused
    /// scratch, O(messages + machines) per round, allocation-free in steady
    /// state.
    ///
    /// By construction `delivered` is almost always already `from`-sorted
    /// (outputs are merged in ascending machine order, injections are all
    /// external), so the `from` pass is skipped after an O(n) check and a
    /// round costs a single scatter pass by `to`. Stability is what makes
    /// a radix sort correct here: ties on `(to, from)` must keep injection
    /// order, which an unstable comparison sort on `(to, from)` would not.
    fn sort_delivered(&mut self) {
        let n = self.machines.len();
        let from_bucket = |e: &Envelope<M::Msg>| {
            if e.from == Envelope::<M::Msg>::EXTERNAL {
                n
            } else {
                e.from as usize
            }
        };
        let from_sorted = self
            .delivered
            .windows(2)
            .all(|w| from_bucket(&w[0]) <= from_bucket(&w[1]));
        if !from_sorted {
            counting_sort_by(
                &mut self.delivered,
                &mut self.sort_aux,
                &mut self.counts,
                n + 1,
                from_bucket,
            );
            std::mem::swap(&mut self.delivered, &mut self.sort_aux);
        }
        counting_sort_by(
            &mut self.delivered,
            &mut self.sort_aux,
            &mut self.counts,
            n,
            |e| e.to as usize,
        );
        std::mem::swap(&mut self.delivered, &mut self.sort_aux);
    }
}

/// Stable counting sort: moves every element of `src` into `dst` ordered by
/// `key` (which must return values `< n_buckets`), preserving input order
/// within a bucket. `counts` is the reused histogram/offset scratch; `dst`
/// is cleared and refilled without shrinking its capacity.
fn counting_sort_by<Msg>(
    src: &mut Vec<Envelope<Msg>>,
    dst: &mut Vec<Envelope<Msg>>,
    counts: &mut Vec<usize>,
    n_buckets: usize,
    key: impl Fn(&Envelope<Msg>) -> usize,
) {
    let len = src.len();
    counts.clear();
    counts.resize(n_buckets, 0);
    for e in src.iter() {
        counts[key(e)] += 1;
    }
    // Histogram -> bucket start offsets.
    let mut acc = 0usize;
    for c in counts.iter_mut() {
        let bucket = *c;
        *c = acc;
        acc += bucket;
    }
    dst.clear();
    dst.reserve(len);
    // SAFETY: counting-sort offsets form a permutation of 0..len, so every
    // element of `src` is moved into a unique slot of `dst` exactly once.
    // `src.set_len(0)` happens before the moves so nothing can double-drop;
    // `key` is pure field access on already-counted elements and in-bounds
    // by the histogram pass, so the loop cannot unwind mid-way.
    unsafe {
        src.set_len(0);
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        for i in 0..len {
            let e = std::ptr::read(sp.add(i));
            let b = key(&e);
            let slot = counts[b];
            counts[b] += 1;
            std::ptr::write(dp.add(slot), e);
        }
        dst.set_len(len);
    }
}

/// Convenience: inject a single message and drive it to quiescence.
pub fn run_single_update<M: Machine>(
    cluster: &mut Cluster<M>,
    to: MachineId,
    msg: M::Msg,
) -> UpdateMetrics {
    cluster.inject(to, msg);
    cluster.run_update()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Outbox, RoundCtx};

    /// Relays a countdown token to the next machine until it hits zero.
    struct Relay {
        id: MachineId,
        seen: u64,
    }

    impl Machine for Relay {
        type Msg = u64;

        fn on_messages(
            &mut self,
            ctx: &RoundCtx,
            inbox: &mut Vec<Envelope<u64>>,
            out: &mut Outbox<u64>,
        ) {
            for env in inbox.drain(..) {
                self.seen += 1;
                if env.msg > 0 {
                    let next = (self.id + 1) % ctx.n_machines as MachineId;
                    out.send(next, env.msg - 1);
                }
            }
        }

        fn memory_words(&self) -> usize {
            2
        }
    }

    fn relay_cluster(n: usize, cfg: ClusterConfig) -> Cluster<Relay> {
        let machines = (0..n as MachineId)
            .map(|id| Relay { id, seen: 0 })
            .collect();
        Cluster::new(machines, cfg)
    }

    #[test]
    fn token_ring_rounds_counted() {
        let mut c = relay_cluster(4, ClusterConfig::default());
        let m = run_single_update(&mut c, 0, 5);
        // Round 1 delivers the injection, rounds 2..6 relay 4,3,2,1,0.
        assert_eq!(m.rounds, 6);
        assert_eq!(m.max_active_machines, 1);
        // The token visits 0,1,2,3,0,1: four distinct machines in total.
        assert_eq!(m.machines_touched, 4);
        // Injection itself is free; five relayed messages of one word each.
        assert_eq!(m.total_words, 5);
        assert!(m.clean());
    }

    #[test]
    fn batch_injection_shares_rounds() {
        // Two tokens run in the same quiescence run: rounds are the max of
        // the two chains, not the sum, and the cost is amortized over k=2.
        let mut c = relay_cluster(4, ClusterConfig::default());
        let b = c.run_batch([(0, 5u64), (1, 3u64)], 2);
        assert_eq!(b.updates, 2);
        assert_eq!(b.rounds, 6); // max(6, 4), not 6 + 4
        assert_eq!(b.total_words, 8); // 5 + 3 relayed words
        assert!((b.amortized_rounds() - 3.0).abs() < 1e-9);
        assert!(b.clean());

        // The looped equivalent pays the rounds serially.
        let mut c2 = relay_cluster(4, ClusterConfig::default());
        let mut looped = BatchMetrics::default();
        looped.absorb_update(&run_single_update(&mut c2, 0, 5));
        looped.absorb_update(&run_single_update(&mut c2, 1, 3));
        assert_eq!(looped.rounds, 10);
        assert!(looped.amortized_rounds() > b.amortized_rounds());
    }

    #[test]
    fn dead_machines_drop_messages_with_violations() {
        let mut c = relay_cluster(4, ClusterConfig::default());
        c.kill(2);
        assert!(!c.is_alive(2) && !c.all_alive());
        // The token dies at machine 2's door: 0 -> 1 -> (2 dropped); the
        // dropping round still runs (and meters empty).
        let m = run_single_update(&mut c, 0, 5);
        assert_eq!(m.rounds, 3);
        assert_eq!(
            m.violations,
            vec![Violation::DeadMachine {
                machine: 2,
                round: 3
            }]
        );
        assert_eq!(c.machine(2).seen, 0);
        // Revived, the same token crosses the whole ring again.
        c.revive(2);
        assert!(c.all_alive());
        let m = run_single_update(&mut c, 0, 5);
        assert!(m.clean());
        assert_eq!(m.rounds, 6);
        assert!(c.machine(2).seen > 0);
    }

    #[test]
    fn idle_chaos_plan_is_stored_not_scheduled() {
        use crate::chaos::{ChaosKind, ChaosPlan};
        let plan = ChaosPlan::new(9).with_event(1_000_000, ChaosKind::Kill(1));
        let cfg = ClusterConfig::default().with_chaos(plan.clone());
        let mut c = relay_cluster(3, cfg);
        assert_eq!(c.chaos_plan(), Some(&plan));
        // The executor never applies plan events on its own.
        let m = run_single_update(&mut c, 0, 4);
        assert!(m.clean());
        assert!(c.all_alive());
    }

    #[test]
    fn mid_round_kill_quarantines_with_exact_accounting() {
        use crate::chaos::ChaosKind;
        let mut c = relay_cluster(4, ClusterConfig::default());
        // Token 0 -> 1 -> 2 -> ...: machine 2 dies at the start of round 3,
        // exactly when 1's relay to it is queued for delivery.
        c.arm_in_round(3, ChaosKind::Kill(2));
        let m = run_single_update(&mut c, 0, 5);
        assert_eq!(m.rounds, 3);
        assert_eq!(
            m.violations,
            vec![Violation::LostInFlight {
                machine: 2,
                round: 3,
                words: 1,
                external: false,
            }]
        );
        // Flow conservation: sent == delivered + lost, word for word.
        // Sends: 0->1 (round 1), 1->2 (round 2). Delivered m2m: 0->1 only.
        assert_eq!(m.total_words_sent, 2);
        assert_eq!(m.total_words, 1);
        assert_eq!(m.lost_words, 1);
        assert_eq!(m.lost_messages, 1);
        assert_eq!(m.total_words_sent, m.total_words + m.lost_words);
        // The victim never processed a round after its death.
        assert_eq!(c.machine(2).seen, 0);
        assert!(!c.is_alive(2));
    }

    #[test]
    fn late_sends_to_mid_round_victim_stay_lost_not_dead() {
        use crate::chaos::ChaosKind;
        // Broadcast ring: every machine relays to the next, so the victim
        // keeps being addressed for several rounds after its death — all of
        // it must quarantine as LostInFlight (accounted), never DeadMachine.
        let mut c = relay_cluster(3, ClusterConfig::default());
        c.arm_in_round(2, ChaosKind::Kill(1));
        let m = run_single_update(&mut c, 0, 7);
        assert!(m.violations.iter().all(|v| matches!(
            v,
            Violation::LostInFlight {
                external: false,
                ..
            }
        )));
        assert!(!m.violations.is_empty());
        assert_eq!(m.total_words_sent, m.total_words + m.lost_words);
    }

    #[test]
    fn lost_external_injection_is_flagged_and_excluded_from_flow() {
        use crate::chaos::ChaosKind;
        let mut c = relay_cluster(3, ClusterConfig::default());
        c.arm_in_round(1, ChaosKind::Kill(0));
        let m = run_single_update(&mut c, 0, 4);
        assert_eq!(m.rounds, 1);
        assert_eq!(
            m.violations,
            vec![Violation::LostInFlight {
                machine: 0,
                round: 1,
                words: 1,
                external: true,
            }]
        );
        // External injections are free in the model: nothing sent, nothing
        // lost from the machine-to-machine flow map.
        assert_eq!(m.total_words_sent, 0);
        assert_eq!(m.lost_words, 0);
        assert_eq!(m.lost_messages, 0);
    }

    #[test]
    fn mid_round_revive_restores_delivery_within_the_run() {
        use crate::chaos::ChaosKind;
        let mut c = relay_cluster(4, ClusterConfig::default());
        // Machine 2 blinks: dead for rounds 1-2, back at round 3 — before
        // any message is addressed to it, so the run stays clean.
        c.arm_in_round(1, ChaosKind::Kill(2));
        c.arm_in_round(3, ChaosKind::Revive(2));
        let m = run_single_update(&mut c, 0, 5);
        assert!(m.clean());
        assert_eq!(m.rounds, 6);
        assert!(c.all_alive());
        assert!(c.machine(2).seen > 0);
    }

    #[test]
    fn unfired_armed_events_are_fenced_to_their_epoch() {
        use crate::chaos::ChaosKind;
        let mut c = relay_cluster(4, ClusterConfig::default());
        let fenced_epoch = c.epoch() + 1;
        // Armed far past quiescence: the run ends before it fires, and the
        // fence drops it — the next epoch must run clean and fully alive.
        c.arm_in_round(500, ChaosKind::Kill(1));
        assert_eq!(c.armed_len(), 1);
        let m = run_single_update(&mut c, 0, 5);
        assert!(m.clean());
        assert_eq!(c.epoch(), fenced_epoch);
        assert_eq!(c.armed_len(), 0);
        assert!(c.all_alive());
        let m2 = run_single_update(&mut c, 0, 5);
        assert!(m2.clean());
        assert!(c.all_alive());
    }

    #[test]
    fn epoch_and_round_limit_accessors() {
        let mut c = relay_cluster(2, ClusterConfig::default());
        assert_eq!(c.round_limit(), 10_000);
        let e0 = c.epoch();
        c.run_update(); // quiescent runs still open (and fence) an epoch
        run_single_update(&mut c, 0, 1);
        assert_eq!(c.epoch(), e0 + 2);
    }

    #[test]
    fn quiescent_cluster_runs_zero_rounds() {
        let mut c = relay_cluster(3, ClusterConfig::default());
        let m = c.run_update();
        assert_eq!(m.rounds, 0);
        assert!(m.clean());
    }

    #[test]
    fn round_limit_violation_recorded() {
        struct Forever;
        impl Machine for Forever {
            type Msg = u64;
            fn on_messages(
                &mut self,
                ctx: &RoundCtx,
                inbox: &mut Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) {
                inbox.clear();
                out.send(ctx.self_id, 1);
            }
        }
        let mut c = Cluster::new(
            vec![Forever],
            ClusterConfig {
                max_rounds_per_update: 10,
                ..Default::default()
            },
        );
        let m = run_single_update(&mut c, 0, 1);
        assert!(matches!(
            m.violations[0],
            Violation::RoundLimit { limit: 10 }
        ));
    }

    #[test]
    fn send_cap_violation_recorded() {
        struct Blaster;
        impl Machine for Blaster {
            type Msg = Vec<u64>;
            fn on_messages(
                &mut self,
                _c: &RoundCtx,
                inbox: &mut Vec<Envelope<Vec<u64>>>,
                out: &mut Outbox<Vec<u64>>,
            ) {
                if inbox[0].from == Envelope::<Vec<u64>>::EXTERNAL {
                    out.send(1, vec![0; 100]);
                }
            }
        }
        let mut c = Cluster::new(vec![Blaster, Blaster], ClusterConfig::with_capacity(10));
        let m = run_single_update(&mut c, 0, vec![1]);
        assert!(m.violations.iter().any(|v| matches!(
            v,
            Violation::SendCap {
                machine: 0,
                words: 100,
                ..
            }
        )));
        assert!(m.violations.iter().any(|v| matches!(
            v,
            Violation::RecvCap {
                machine: 1,
                words: 100,
                ..
            }
        )));
    }

    #[test]
    fn flows_tracked_when_enabled() {
        let cfg = ClusterConfig {
            track_flows: true,
            ..Default::default()
        };
        let mut c = relay_cluster(3, cfg);
        let m = run_single_update(&mut c, 0, 3);
        // 0->1, 1->2, 2->0 one word each.
        assert_eq!(m.flows.len(), 3);
        assert!((m.flow_entropy_bits() - (3f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn broadcast_activates_all_machines() {
        struct Hub;
        impl Machine for Hub {
            type Msg = u64;
            fn on_messages(
                &mut self,
                ctx: &RoundCtx,
                inbox: &mut Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) {
                for env in inbox.drain(..) {
                    if env.from == Envelope::<u64>::EXTERNAL {
                        out.broadcast(ctx.n_machines, 0);
                    }
                }
            }
        }
        let mut c = Cluster::new((0..8).map(|_| Hub).collect(), ClusterConfig::default());
        let m = run_single_update(&mut c, 0, 9);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.max_active_machines, 7); // round 2: everyone but the hub
        assert_eq!(m.machines_touched, 8); // hub in round 1, the rest in round 2
        assert_eq!(m.total_words, 7);
    }

    #[test]
    fn machines_touched_resets_between_updates() {
        // Two successive updates each touch their own distinct set; the
        // epoch-stamped scratch must not leak counts across updates.
        let mut c = relay_cluster(6, ClusterConfig::default());
        let a = run_single_update(&mut c, 0, 2); // visits 0,1,2
        let b = run_single_update(&mut c, 0, 1); // visits 0,1 again
        assert_eq!(a.machines_touched, 3);
        assert_eq!(b.machines_touched, 2);
        assert!(a.machines_touched <= a.rounds * a.max_active_machines.max(1));
    }

    #[test]
    fn record_per_round_off_keeps_aggregates_identical() {
        let run = |record: bool| {
            let cfg = ClusterConfig {
                record_per_round: record,
                ..Default::default()
            };
            let mut c = relay_cluster(4, cfg);
            run_single_update(&mut c, 0, 9)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.per_round.len(), on.rounds);
        assert!(off.per_round.is_empty());
        assert_eq!(on.rounds, off.rounds);
        assert_eq!(on.total_words, off.total_words);
        assert_eq!(on.total_messages, off.total_messages);
        assert_eq!(on.max_words_per_round, off.max_words_per_round);
        assert_eq!(on.max_active_machines, off.max_active_machines);
    }

    #[test]
    fn worker_pool_backend_matches_serial() {
        let pool_cfg = ClusterConfig {
            backend: Backend::WorkerPool,
            threads: 3,
            ..Default::default()
        };
        let mut serial = relay_cluster(6, ClusterConfig::default());
        let mut pooled = relay_cluster(6, pool_cfg);
        for hops in [7u64, 3, 11, 0, 5] {
            let a = run_single_update(&mut serial, (hops % 6) as MachineId, hops);
            let b = run_single_update(&mut pooled, (hops % 6) as MachineId, hops);
            assert_eq!(a, b);
        }
        let a: Vec<u64> = serial.machines().map(|m| m.seen).collect();
        let b: Vec<u64> = pooled.machines().map(|m| m.seen).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn inbox_is_to_from_sorted_with_external_last() {
        // Machine 2 fans out to 0 in the same round as an external
        // injection to 0; machine 0 must see machine senders ascending,
        // then the external message.
        struct Log {
            id: MachineId,
            log: Vec<MachineId>,
        }
        impl Machine for Log {
            type Msg = u64;
            fn on_messages(
                &mut self,
                _ctx: &RoundCtx,
                inbox: &mut Vec<Envelope<u64>>,
                out: &mut Outbox<u64>,
            ) {
                for env in inbox.drain(..) {
                    self.log.push(env.from);
                    if env.msg == 1 {
                        // Round 1: everyone messages machine 0.
                        out.send(0, 0);
                        if self.id == 3 {
                            out.send(0, 0); // second message from the same sender
                        }
                    }
                }
            }
        }
        let mut c = Cluster::new(
            (0..4)
                .map(|id| Log {
                    id,
                    log: Vec::new(),
                })
                .collect(),
            ClusterConfig::default(),
        );
        for m in 0..4 {
            c.inject(m, 1);
        }
        c.run_update();
        c.inject(0, 9); // quiesced; next run starts fresh
        c.run_update();
        let ext = Envelope::<u64>::EXTERNAL;
        // Round 1: external injection. Round 2: senders 0..3 ascending with
        // 3's two messages adjacent. Then the second update's injection.
        assert_eq!(c.machine(0).log, vec![ext, 0, 1, 2, 3, 3, ext]);
    }
}
