//! An instrumented simulator of the Massively Parallel Computation (MPC)
//! model, specialized for the *dynamic* MPC (DMPC) model of the paper
//! "Dynamic Algorithms for the Massively Parallel Computation Model"
//! (SPAA 2019).
//!
//! The simulator provides:
//!
//! * [`machine::Machine`] — the per-machine program abstraction. Machines hold
//!   `O(S)` words of local state and exchange messages in synchronous rounds.
//! * [`cluster::Cluster`] — the round executor. An *update* injects external
//!   messages and runs rounds to quiescence, producing an
//!   [`metrics::UpdateMetrics`] with exactly the three quantities the paper's
//!   Table 1 reports: **rounds**, **active machines per round**, and
//!   **communication per round** — plus capacity-violation tracking and the
//!   communication-entropy metric proposed in the paper's Section 8.
//!   [`Cluster::run_batch`] seeds a whole batch of external envelopes in
//!   round 0 and meters the combined quiescence run as one
//!   [`metrics::BatchMetrics`] with per-update amortized costs.
//! * Parallel stepping backends — the legacy scoped-thread backend
//!   ([`cluster::Backend::ScopeThreads`]) and a persistent worker pool
//!   ([`pool::WorkerPool`], selected via [`cluster::Backend::WorkerPool`])
//!   whose threads live as long as the cluster. Both are bit-identical to
//!   the serial backend (verified by property tests), so large simulations
//!   use all host cores without changing observable behaviour.
//!
//! The round executor's hot path is allocation-free in steady state: one
//! stable counting sort groups each round's messages into contiguous
//! per-receiver inbox slices, and every scratch buffer is owned by the
//! [`Cluster`] and reused across rounds (see `docs/ARCHITECTURE.md`,
//! "Executor internals").
//!
//! Units: memory and message sizes are counted in 64-bit **words**, the
//! natural unit for the model's `O(sqrt(N))`-word machine memories.
//!
//! # Example
//!
//! A four-machine ring that forwards a token until its hop budget runs out.
//! One update runs rounds to quiescence and is metered exactly:
//!
//! ```
//! use dmpc_mpc::{Cluster, ClusterConfig, Envelope, Machine, Outbox, Payload, RoundCtx};
//!
//! #[derive(Clone, Debug)]
//! struct Token(u64);
//! impl Payload for Token {
//!     fn size_words(&self) -> usize {
//!         1
//!     }
//! }
//!
//! struct Hop;
//! impl Machine for Hop {
//!     type Msg = Token;
//!     fn on_messages(&mut self, ctx: &RoundCtx, inbox: &mut Vec<Envelope<Token>>, out: &mut Outbox<Token>) {
//!         for env in inbox.drain(..) {
//!             if env.msg.0 > 0 {
//!                 out.send((ctx.self_id + 1) % ctx.n_machines as u32, Token(env.msg.0 - 1));
//!             }
//!         }
//!     }
//! }
//!
//! let mut cluster = Cluster::new((0..4).map(|_| Hop).collect(), ClusterConfig::default());
//! cluster.inject(0, Token(5));
//! let metrics = cluster.run_update();
//! assert!(metrics.clean());
//! assert_eq!(metrics.rounds, 6); // 5 hops + the final quiescent round
//! assert_eq!(metrics.total_messages, 5);
//! ```

pub mod chaos;
pub mod clock;
pub mod cluster;
pub mod machine;
pub mod metrics;
pub mod parallel;
pub mod pool;

pub use chaos::{pack_text, unpack_text, ChaosCaps, ChaosEvent, ChaosKind, ChaosPlan, SnapCourier};
pub use clock::{LatencyStats, SimClock};
pub use cluster::{Backend, Cluster, ClusterConfig, ExecOptions};
pub use machine::{Envelope, Layout, Machine, Outbox, Payload, RoundCtx, Scheduler};
pub use metrics::{
    entropy_bits, loglog_slope, AggregateMetrics, BatchMetrics, QueryMetrics, RecoveryMetrics,
    RoundMetrics, UpdateMetrics, Violation,
};
pub use pool::WorkerPool;

/// Identifier of a simulated machine (dense `0..mu`).
pub type MachineId = u32;

/// Conventional id of the coordinator machine used by the paper's
/// coordinator-based algorithms (Sections 3 and 4).
pub const COORDINATOR: MachineId = 0;
