//! An instrumented simulator of the Massively Parallel Computation (MPC)
//! model, specialized for the *dynamic* MPC (DMPC) model of the paper
//! "Dynamic Algorithms for the Massively Parallel Computation Model"
//! (SPAA 2019).
//!
//! The simulator provides:
//!
//! * [`machine::Machine`] — the per-machine program abstraction. Machines hold
//!   `O(S)` words of local state and exchange messages in synchronous rounds.
//! * [`cluster::Cluster`] — the round executor. An *update* injects external
//!   messages and runs rounds to quiescence, producing an
//!   [`metrics::UpdateMetrics`] with exactly the three quantities the paper's
//!   Table 1 reports: **rounds**, **active machines per round**, and
//!   **communication per round** — plus capacity-violation tracking and the
//!   communication-entropy metric proposed in the paper's Section 8.
//! * [`parallel`] — a crossbeam-based parallel stepping backend that is
//!   bit-identical to the serial backend (verified by tests), so large
//!   simulations use all host cores without changing observable behaviour.
//!
//! Units: memory and message sizes are counted in 64-bit **words**, the
//! natural unit for the model's `O(sqrt(N))`-word machine memories.

pub mod cluster;
pub mod machine;
pub mod metrics;
pub mod parallel;

pub use cluster::{Cluster, ClusterConfig};
pub use machine::{Envelope, Machine, Outbox, Payload, RoundCtx};
pub use metrics::{
    entropy_bits, loglog_slope, AggregateMetrics, RoundMetrics, UpdateMetrics, Violation,
};

/// Identifier of a simulated machine (dense `0..mu`).
pub type MachineId = u32;

/// Conventional id of the coordinator machine used by the paper's
/// coordinator-based algorithms (Sections 3 and 4).
pub const COORDINATOR: MachineId = 0;
