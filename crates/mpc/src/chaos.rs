//! The chaos fault-injection plane: deterministic, seedable schedules of
//! machine failures and shard reshapes, plus the shared helpers every
//! recovery/migration transfer uses.
//!
//! A [`ChaosPlan`] is a first-class, reproducible test input: a list of
//! kill/revive/split/merge events pinned to *batch indexes* of a workload
//! stream. Harnesses (see `dmpc_core::elastic`) apply the events between
//! batches, so the same `(stream seed, plan seed)` pair always produces the
//! same fault trajectory — faults are data, not ad-hoc test hacks.
//!
//! The plane also owns the wire-format helpers for state transfer:
//! snapshots are plain text (the repo's serialization idiom), packed eight
//! bytes per 64-bit word by [`pack_text`] so handoff traffic is metered in
//! the model's units, and streamed in capacity-budgeted chunks by a
//! stop-and-wait [`SnapCourier`] (chunk, ack, next chunk) so migration and
//! recovery respect the per-round send cap `S` exactly like PR 5's query
//! waves. [`fnv1a`] is the digest used for bit-identical state comparisons.

use crate::MachineId;

/// What a chaos event does to the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosKind {
    /// Fail-stop the machine: messages addressed to it are dropped (and
    /// recorded as [`crate::Violation::DeadMachine`]) until it is revived.
    Kill(MachineId),
    /// Bring the machine back with recovered state (checkpoint + replay).
    Revive(MachineId),
    /// Halve the machine's shard, migrating the upper half to a neighbour.
    Split(MachineId),
    /// Empty the machine's shard into a neighbour.
    Merge(MachineId),
}

/// One scheduled fault, pinned to a position in the workload stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// The event fires before the batch with this index is applied (an
    /// index one past the last batch fires after the whole stream).
    pub at_batch: usize,
    /// `None`: the event fires *between* batches (the PR 6 boundary model).
    /// `Some(r)`: the event fires *inside* batch `at_batch`'s quiescence
    /// run, at the start of round `r` (1-based, like round metrics) — the
    /// victim's round `r-1` sends still deliver, and every message
    /// addressed to it from round `r` on is quarantined as
    /// [`crate::Violation::LostInFlight`]. Only meaningful on
    /// [`ChaosKind::Kill`] and [`ChaosKind::Revive`].
    pub at_round: Option<u32>,
    /// What happens.
    pub kind: ChaosKind,
}

impl ChaosEvent {
    /// True if the event fires inside the round loop rather than at a
    /// batch boundary.
    pub fn mid_flight(&self) -> bool {
        self.at_round.is_some()
    }
}

/// Which event kinds a generated plan may contain, and which machines are
/// exempt (e.g. a coordinator the paper treats as reliable).
#[derive(Clone, Copy, Debug)]
pub struct ChaosCaps {
    /// Allow kill/revive events.
    pub kill_revive: bool,
    /// Allow split/merge events (only meaningful for range-partitioned
    /// algorithms; drivers without shard migration skip them).
    pub split_merge: bool,
    /// Machines `0..protect` are never killed, split, or merged.
    pub protect: MachineId,
}

impl Default for ChaosCaps {
    fn default() -> Self {
        ChaosCaps {
            kill_revive: true,
            split_merge: true,
            protect: 0,
        }
    }
}

/// A deterministic, seedable schedule of chaos events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The events, sorted by `at_batch`.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan (no faults) — the failure-free baseline.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder: append one event (kept sorted by batch index).
    pub fn with_event(mut self, at_batch: usize, kind: ChaosKind) -> Self {
        self.events.push(ChaosEvent {
            at_batch,
            at_round: None,
            kind,
        });
        self.events.sort_by_key(|e| e.at_batch);
        self
    }

    /// Builder: append one *mid-flight* event that fires at the start of
    /// round `at_round` (1-based) inside batch `at_batch`'s quiescence run.
    pub fn with_event_in_round(mut self, at_batch: usize, at_round: u32, kind: ChaosKind) -> Self {
        self.events.push(ChaosEvent {
            at_batch,
            at_round: Some(at_round),
            kind,
        });
        self.events.sort_by_key(|e| e.at_batch);
        self
    }

    /// True if any event in the plan fires inside a round loop.
    pub fn has_mid_flight(&self) -> bool {
        self.events.iter().any(|e| e.mid_flight())
    }

    /// Validates the plan against a cluster shape *before* any run starts,
    /// so malformed plans fail with a message naming the offending event
    /// instead of surfacing as a mid-run panic.
    ///
    /// `n_machines` is the cluster size, `killable` the number of machines
    /// the algorithm allows chaos to take (e.g. all but a protected
    /// coordinator), and `max_rounds` the quiescence cap
    /// ([`crate::ClusterConfig::max_rounds_per_update`]) that bounds legal
    /// round offsets.
    /// Mid-flight kills are *transient*: the elastic harness aborts the
    /// epoch and recovers the victim before the next batch, so they count
    /// against the simultaneous-dead budget only within their own batch.
    pub fn validate(
        &self,
        n_machines: usize,
        killable: usize,
        max_rounds: usize,
    ) -> Result<(), String> {
        let mut dead: Vec<MachineId> = Vec::new();
        let mut transient: Vec<MachineId> = Vec::new();
        let mut cur_batch = usize::MAX;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.at_batch != cur_batch {
                // Batch boundary: every mid-flight victim of the previous
                // batch has been auto-recovered by abort-and-retry.
                transient.clear();
                cur_batch = ev.at_batch;
            }
            let name = |m: MachineId| {
                format!("event #{i} ({:?} at batch {})", ev.kind, ev.at_batch)
                    + &match ev.at_round {
                        Some(r) => format!(" round {r} targeting machine {m}"),
                        None => format!(" targeting machine {m}"),
                    }
            };
            let m = match ev.kind {
                ChaosKind::Kill(m)
                | ChaosKind::Revive(m)
                | ChaosKind::Split(m)
                | ChaosKind::Merge(m) => m,
            };
            if m as usize >= n_machines {
                return Err(format!(
                    "{}: machine id out of range (cluster has {n_machines} machines)",
                    name(m)
                ));
            }
            if let Some(r) = ev.at_round {
                if !matches!(ev.kind, ChaosKind::Kill(_) | ChaosKind::Revive(_)) {
                    return Err(format!(
                        "{}: round offsets are only legal on Kill/Revive (reshapes \
                         need a quiescent cluster)",
                        name(m)
                    ));
                }
                if r == 0 || r as usize > max_rounds {
                    return Err(format!(
                        "{}: round offset {r} is outside the quiescence cap \
                         1..={max_rounds}",
                        name(m)
                    ));
                }
            }
            match ev.kind {
                ChaosKind::Kill(m) => {
                    if dead.contains(&m) || transient.contains(&m) {
                        return Err(format!("{}: machine is already dead", name(m)));
                    }
                    if ev.at_round.is_some() {
                        transient.push(m);
                    } else {
                        dead.push(m);
                    }
                    let down = dead.len() + transient.len();
                    if down > killable {
                        return Err(format!(
                            "{}: {down} machines dead at once exceeds the killable \
                             count {killable}",
                            name(m)
                        ));
                    }
                    if down >= n_machines {
                        return Err(format!(
                            "{}: killing every machine leaves no live peer to recover \
                             from",
                            name(m)
                        ));
                    }
                }
                ChaosKind::Revive(m) => {
                    if let Some(p) = transient.iter().position(|&d| d == m) {
                        transient.remove(p);
                    } else if let Some(p) = dead.iter().position(|&d| d == m) {
                        if ev.at_round.is_some() {
                            // A mid-round revive cannot rebuild state lost
                            // at a batch boundary: recovery needs a
                            // quiescent handoff.
                            return Err(format!(
                                "{}: mid-round revive of a machine killed at a batch \
                                 boundary (state recovery needs a quiescent handoff)",
                                name(m)
                            ));
                        }
                        dead.remove(p);
                    } else {
                        return Err(format!("{}: machine is not dead", name(m)));
                    }
                }
                ChaosKind::Split(_) | ChaosKind::Merge(_) => {}
            }
        }
        Ok(())
    }

    /// Generates a well-formed plan: kills target alive, unprotected
    /// machines; revives target dead ones; splits/merges fire only while no
    /// machine is dead (harnesses defer reshapes during an outage anyway);
    /// every machine still dead at the end is revived one past the last
    /// batch. Deterministic in `(seed, n_batches, n_machines, n_events,
    /// caps)`.
    pub fn generate(
        seed: u64,
        n_batches: usize,
        n_machines: usize,
        n_events: usize,
        caps: ChaosCaps,
    ) -> Self {
        let mut rng = seed ^ 0x5eed_c4a0_5c4a_05c4;
        let mut times: Vec<usize> = (0..n_events)
            .map(|_| splitmix64(&mut rng) as usize % n_batches.max(1))
            .collect();
        times.sort_unstable();
        let mut events = Vec::new();
        let mut dead: Vec<MachineId> = Vec::new();
        let killable: Vec<MachineId> = (caps.protect..n_machines as MachineId).collect();
        for at in times {
            let r = splitmix64(&mut rng);
            if !dead.is_empty() && (r & 1 == 1 || dead.len() >= killable.len().saturating_sub(1)) {
                let m = dead.remove(splitmix64(&mut rng) as usize % dead.len());
                events.push(ChaosEvent {
                    at_batch: at,
                    at_round: None,
                    kind: ChaosKind::Revive(m),
                });
            } else if caps.split_merge && dead.is_empty() && r & 6 != 0 {
                let m = killable[splitmix64(&mut rng) as usize % killable.len().max(1)];
                let kind = if r & 8 == 0 {
                    ChaosKind::Split(m)
                } else {
                    ChaosKind::Merge(m)
                };
                events.push(ChaosEvent {
                    at_batch: at,
                    at_round: None,
                    kind,
                });
            } else if caps.kill_revive {
                let alive: Vec<MachineId> = killable
                    .iter()
                    .copied()
                    .filter(|m| !dead.contains(m))
                    .collect();
                if alive.is_empty() {
                    continue;
                }
                let m = alive[splitmix64(&mut rng) as usize % alive.len()];
                dead.push(m);
                events.push(ChaosEvent {
                    at_batch: at,
                    at_round: None,
                    kind: ChaosKind::Kill(m),
                });
            }
        }
        for m in dead {
            events.push(ChaosEvent {
                at_batch: n_batches,
                at_round: None,
                kind: ChaosKind::Revive(m),
            });
        }
        ChaosPlan { seed, events }
    }

    /// The events scheduled at batch index `at`, in plan order.
    pub fn events_at(&self, at: usize) -> impl Iterator<Item = &ChaosEvent> {
        self.events.iter().filter(move |e| e.at_batch == at)
    }
}

/// `splitmix64`: the standard 64-bit mixing step (public-domain constants),
/// used so the chaos plane has a seedable RNG with zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Packs a text snapshot into wire words: word 0 is the byte length, then
/// the bytes, eight per word, zero-padded. Snapshots stay human-readable on
/// the machine side while handoff traffic is metered in model words.
pub fn pack_text(text: &str) -> Vec<u64> {
    let bytes = text.as_bytes();
    let mut words = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
    words
}

/// Inverse of [`pack_text`]. Panics on a malformed buffer (transfer-layer
/// bugs, not data-dependent conditions).
pub fn unpack_text(words: &[u64]) -> String {
    let len = words[0] as usize;
    assert!(
        words.len() == 1 + len.div_ceil(8),
        "packed text length mismatch"
    );
    let mut bytes = Vec::with_capacity(len);
    for w in &words[1..] {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.truncate(len);
    String::from_utf8(bytes).expect("packed text is valid UTF-8")
}

/// FNV-1a over bytes: the digest used for bit-identical state comparisons
/// (chaos runs vs failure-free replays).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sender-side state of one budgeted stop-and-wait state transfer: at most
/// `budget` payload words leave per round, the next chunk departs only on
/// the receiver's ack, so handoff never violates the send cap `S`.
#[derive(Clone, Debug)]
pub struct SnapCourier {
    /// The receiving machine.
    pub dst: MachineId,
    /// Whether the receiver installs the payload as a full state restore
    /// (recovery) or merges it (migration).
    pub install: bool,
    words: Vec<u64>,
    cursor: usize,
    budget: usize,
}

impl SnapCourier {
    /// A courier shipping `words` to `dst`, at most `budget` payload words
    /// per chunk.
    pub fn new(dst: MachineId, install: bool, words: Vec<u64>, budget: usize) -> Self {
        SnapCourier {
            dst,
            install,
            words,
            cursor: 0,
            budget: budget.max(1),
        }
    }

    /// The next chunk and whether it is the last, or `None` when the
    /// payload is fully shipped. An empty payload still yields one (empty,
    /// last) chunk so the receiver always observes a terminator.
    pub fn next_chunk(&mut self) -> Option<(Vec<u64>, bool)> {
        if self.cursor > self.words.len() || (self.cursor == self.words.len() && self.cursor != 0) {
            return None;
        }
        let end = (self.cursor + self.budget).min(self.words.len());
        let chunk = self.words[self.cursor..end].to_vec();
        self.cursor = end;
        let last = end == self.words.len();
        if last && end == 0 {
            self.cursor = 1; // mark the empty payload as shipped
        }
        Some((chunk, last))
    }

    /// Payload words not yet shipped (memory accounting).
    pub fn words_left(&self) -> usize {
        self.words.len().saturating_sub(self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        for text in [
            "",
            "a",
            "12345678",
            "123456789",
            "vert 0 0 1\nadj 0 1 t 2 3 4\n",
        ] {
            assert_eq!(unpack_text(&pack_text(text)), text);
        }
    }

    #[test]
    fn generated_plans_are_deterministic_and_well_formed() {
        let caps = ChaosCaps::default();
        let a = ChaosPlan::generate(7, 20, 8, 10, caps);
        let b = ChaosPlan::generate(7, 20, 8, 10, caps);
        assert_eq!(a, b);
        assert_ne!(a, ChaosPlan::generate(8, 20, 8, 10, caps));
        // Kills target alive machines, revives dead ones, and every kill is
        // eventually revived.
        let mut dead = std::collections::BTreeSet::new();
        for ev in &a.events {
            match ev.kind {
                ChaosKind::Kill(m) => assert!(dead.insert(m), "kill of a dead machine"),
                ChaosKind::Revive(m) => assert!(dead.remove(&m), "revive of an alive machine"),
                ChaosKind::Split(_) | ChaosKind::Merge(_) => {
                    assert!(dead.is_empty(), "reshape while a machine is dead")
                }
            }
        }
        assert!(dead.is_empty(), "unrevived machines at end of plan");
    }

    #[test]
    fn protect_exempts_low_machines() {
        let caps = ChaosCaps {
            kill_revive: true,
            split_merge: false,
            protect: 1,
        };
        let plan = ChaosPlan::generate(3, 40, 4, 24, caps);
        assert!(!plan.events.is_empty());
        for ev in &plan.events {
            match ev.kind {
                ChaosKind::Kill(m) | ChaosKind::Split(m) | ChaosKind::Merge(m) => {
                    assert!(m >= 1, "protected machine targeted")
                }
                ChaosKind::Revive(_) => {}
            }
        }
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let plan = ChaosPlan::generate(7, 20, 8, 10, ChaosCaps::default());
        assert_eq!(plan.validate(8, 8, 10_000), Ok(()));
        // Mid-flight kills are transient (auto-recovered by abort-and-retry
        // within their batch), so the same machine may die again later.
        let mid = ChaosPlan::new(0)
            .with_event_in_round(2, 5, ChaosKind::Kill(3))
            .with_event_in_round(4, 2, ChaosKind::Kill(3))
            .with_event_in_round(4, 6, ChaosKind::Revive(3));
        assert!(mid.has_mid_flight());
        assert_eq!(mid.validate(8, 8, 10_000), Ok(()));
        assert!(!ChaosPlan::new(0).has_mid_flight());
    }

    #[test]
    fn validate_names_the_offending_event() {
        // Round offset past the quiescence cap.
        let err = ChaosPlan::new(0)
            .with_event_in_round(1, 64, ChaosKind::Kill(2))
            .validate(8, 8, 50)
            .unwrap_err();
        assert!(err.contains("event #0"), "{err}");
        assert!(err.contains("Kill(2)"), "{err}");
        assert!(err.contains("round offset 64"), "{err}");
        assert!(err.contains("1..=50"), "{err}");

        // Round offsets are illegal on reshapes.
        let err = ChaosPlan::new(0)
            .with_event_in_round(0, 3, ChaosKind::Split(1))
            .validate(8, 8, 100)
            .unwrap_err();
        assert!(err.contains("only legal on Kill/Revive"), "{err}");

        // Machine id out of range.
        let err = ChaosPlan::new(0)
            .with_event(0, ChaosKind::Kill(9))
            .validate(8, 8, 100)
            .unwrap_err();
        assert!(err.contains("machine 9"), "{err}");
        assert!(err.contains("8 machines"), "{err}");

        // More simultaneous kills than the algorithm allows.
        let err = ChaosPlan::new(0)
            .with_event(0, ChaosKind::Kill(1))
            .with_event(0, ChaosKind::Kill(2))
            .validate(8, 1, 100)
            .unwrap_err();
        assert!(err.contains("exceeds the killable count 1"), "{err}");

        // Killing everything leaves no live peer to recover from.
        let err = ChaosPlan::new(0)
            .with_event(0, ChaosKind::Kill(0))
            .with_event(0, ChaosKind::Kill(1))
            .validate(2, 2, 100)
            .unwrap_err();
        assert!(err.contains("no live peer"), "{err}");

        // Double-kill and spurious revive.
        let err = ChaosPlan::new(0)
            .with_event(0, ChaosKind::Kill(1))
            .with_event(1, ChaosKind::Kill(1))
            .validate(8, 8, 100)
            .unwrap_err();
        assert!(err.contains("already dead"), "{err}");
        let err = ChaosPlan::new(0)
            .with_event(0, ChaosKind::Revive(1))
            .validate(8, 8, 100)
            .unwrap_err();
        assert!(err.contains("not dead"), "{err}");
    }

    #[test]
    fn courier_chunks_respect_budget_and_terminate() {
        let words: Vec<u64> = (0..23).collect();
        let mut c = SnapCourier::new(3, false, words.clone(), 10);
        let mut got = Vec::new();
        let mut lasts = 0;
        while let Some((chunk, last)) = c.next_chunk() {
            assert!(chunk.len() <= 10);
            got.extend(chunk);
            if last {
                lasts += 1;
            }
        }
        assert_eq!(got, words);
        assert_eq!(lasts, 1);
        // Empty payloads still emit exactly one terminating chunk.
        let mut e = SnapCourier::new(0, true, Vec::new(), 4);
        assert_eq!(e.next_chunk(), Some((Vec::new(), true)));
        assert_eq!(e.next_chunk(), None);
    }
}
