//! The machine abstraction: local state + message handlers.

use crate::MachineId;

/// How a machine program stores its per-vertex shard state.
///
/// Both layouts run the identical protocol and produce bit-identical
/// snapshots, digests and metrics (pinned by layout-differential property
/// tests, like the PR 3 backend trio and the PR 4 routing pair); they differ
/// only in memory representation and wall-clock speed. The map layout is the
/// clarity-first original (per-vertex `BTreeMap`s); the SoA layout packs the
/// shard into arena-backed structure-of-arrays slices keyed by dense local
/// slot ids (see `docs/ARCHITECTURE.md`, "Compact machine state").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Layout {
    /// Per-vertex map containers (legacy, kept for differential testing).
    Map,
    /// Arena-backed structure-of-arrays slices (default).
    #[default]
    Soa,
}

/// How a batch pipeline schedules the structural items left over after
/// classification.
///
/// Both schedulers run the identical per-item protocol and produce
/// bit-identical final states, digests, query answers and audits (pinned by
/// scheduler-differential property tests, like the backend trio, the routing
/// pair and the layout pair); they differ only in how many structural
/// protocol lanes are in flight at once, and therefore in rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Partition the batch's structural items into conflict groups —
    /// union-find over the components each item touches — and run disjoint
    /// groups concurrently, each in its own protocol lane. Only true
    /// conflicts (items whose component sets overlap) serialize (default).
    #[default]
    Conflict,
    /// One global lane: every structural item serializes through the
    /// controller (the original batch pipeline, kept for differential
    /// testing).
    Serialized,
}

/// A message payload. Every payload reports its size in 64-bit words so the
/// simulator can meter communication and enforce per-round send/receive caps.
pub trait Payload: Send + Clone + std::fmt::Debug {
    /// Size of this message in 64-bit words (>= 1: even an empty signal
    /// occupies an envelope word on the wire).
    fn size_words(&self) -> usize;
}

/// A routed message.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sending machine, or [`Envelope::EXTERNAL`] for injected updates.
    pub from: MachineId,
    /// Receiving machine.
    pub to: MachineId,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Pseudo-id used as `from` for messages injected from outside the
    /// cluster (the arriving edge update). External injections are not
    /// counted as machine-to-machine communication.
    pub const EXTERNAL: MachineId = MachineId::MAX;
}

/// Per-round context available to a stepping machine.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// The id of the machine being stepped.
    pub self_id: MachineId,
    /// Total number of machines in the cluster.
    pub n_machines: usize,
    /// Round number within the current update (starting at 1).
    pub round: u32,
}

/// Collects the messages a machine sends during one round.
///
/// An outbox is a *view* over an executor-owned envelope buffer: sends are
/// appended directly to the buffer the executor later routes from, so a
/// steady-state round performs no allocation for outbound messages, and
/// [`Outbox::queued_words`] is a running counter (O(1), not a re-scan).
#[derive(Debug)]
pub struct Outbox<'a, M> {
    from: MachineId,
    sink: &'a mut Vec<Envelope<M>>,
    base: usize,
    words: usize,
}

impl<'a, M: Payload> Outbox<'a, M> {
    /// Opens an outbox for `from` appending into `sink`. Only envelopes
    /// appended through this view are attributed to `from`. Public so tests
    /// and harnesses can drive machine programs without a cluster.
    pub fn open(from: MachineId, sink: &'a mut Vec<Envelope<M>>) -> Self {
        let base = sink.len();
        Outbox {
            from,
            sink,
            base,
            words: 0,
        }
    }

    /// Sends `msg` to machine `to` (delivered at the start of the next
    /// round). Sending to self is allowed and keeps the machine active.
    pub fn send(&mut self, to: MachineId, msg: M) {
        self.words += msg.size_words();
        self.sink.push(Envelope {
            from: self.from,
            to,
            msg,
        });
    }

    /// Sends `msg` to every machine in `0..n` except the sender.
    pub fn broadcast(&mut self, n_machines: usize, msg: M) {
        for to in 0..n_machines as MachineId {
            if to != self.from {
                self.send(to, msg.clone());
            }
        }
    }

    /// Total words queued by this machine so far this round (used for cap
    /// enforcement). Maintained incrementally — O(1) per call.
    pub fn queued_words(&self) -> usize {
        self.words
    }

    /// Number of messages queued by this machine so far this round.
    pub fn queued_messages(&self) -> usize {
        self.sink.len() - self.base
    }
}

/// A machine program. Machines are event-driven: `on_messages` is invoked
/// exactly in the rounds where the machine has a non-empty inbox, which is
/// also the paper's notion of an *active* machine ("involved in
/// communication"). A machine with pending local work keeps itself active by
/// sending itself a message.
pub trait Machine: Send {
    /// The message type exchanged by this machine program.
    type Msg: Payload;

    /// Handles this round's inbox. Messages are delivered sorted by
    /// `(from, insertion order)`, deterministically.
    ///
    /// The inbox is an executor-owned buffer lent for the duration of the
    /// call; consume it with `inbox.drain(..)` (anything left behind is
    /// discarded when the call returns — messages do not carry over).
    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: &mut Vec<Envelope<Self::Msg>>,
        out: &mut Outbox<Self::Msg>,
    );

    /// Current local memory footprint in words; checked against the machine
    /// capacity `S` after every active round. The default (0) opts out of
    /// memory accounting.
    fn memory_words(&self) -> usize {
        0
    }
}

// Blanket payload impls for simple testing payloads.
impl Payload for u64 {
    fn size_words(&self) -> usize {
        1
    }
}

impl Payload for Vec<u64> {
    fn size_words(&self) -> usize {
        self.len().max(1)
    }
}

impl Payload for () {
    fn size_words(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_counts_words() {
        let mut sink: Vec<Envelope<Vec<u64>>> = Vec::new();
        let mut out = Outbox::open(3, &mut sink);
        out.send(1, vec![1, 2, 3]);
        out.send(2, vec![9]);
        assert_eq!(out.queued_words(), 4);
        assert_eq!(out.queued_messages(), 2);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[0].from, 3);
        assert_eq!(sink[0].to, 1);
    }

    #[test]
    fn outbox_counter_consistent_under_interleaved_send_broadcast() {
        // The running counter must agree with a from-scratch recomputation
        // after every mutation, under interleaved send/broadcast traffic.
        let mut sink: Vec<Envelope<Vec<u64>>> = Vec::new();
        let mut out = Outbox::open(2, &mut sink);
        let mut expect = 0usize;
        for step in 0..20usize {
            if step.is_multiple_of(3) {
                let msg = vec![step as u64; (step % 5) + 1];
                expect += msg.size_words();
                out.send((step % 7) as MachineId, msg);
            } else {
                let msg = vec![7; (step % 2) + 1];
                // Broadcast to 5 machines skips the sender (id 2).
                expect += 4 * msg.size_words();
                out.broadcast(5, msg);
            }
            let recomputed: usize = sink_words(&out);
            assert_eq!(out.queued_words(), expect);
            assert_eq!(out.queued_words(), recomputed);
        }

        fn sink_words(out: &Outbox<Vec<u64>>) -> usize {
            out.sink[out.base..]
                .iter()
                .map(|e| e.msg.size_words())
                .sum()
        }
    }

    #[test]
    fn outbox_view_attributes_only_own_sends() {
        // Two successive outboxes over one sink: each counts only its own
        // envelopes, and the sink accumulates both in order.
        let mut sink: Vec<Envelope<u64>> = Vec::new();
        {
            let mut a = Outbox::open(0, &mut sink);
            a.send(1, 10);
            assert_eq!(a.queued_words(), 1);
        }
        {
            let mut b = Outbox::open(1, &mut sink);
            assert_eq!(b.queued_words(), 0);
            assert_eq!(b.queued_messages(), 0);
            b.send(0, 20);
            b.send(0, 30);
            assert_eq!(b.queued_words(), 2);
            assert_eq!(b.queued_messages(), 2);
        }
        let route: Vec<(MachineId, MachineId, u64)> =
            sink.iter().map(|e| (e.from, e.to, e.msg)).collect();
        assert_eq!(route, vec![(0, 1, 10), (1, 0, 20), (1, 0, 30)]);
    }

    #[test]
    fn broadcast_skips_self() {
        let mut sink: Vec<Envelope<u64>> = Vec::new();
        let mut out = Outbox::open(1, &mut sink);
        out.broadcast(4, 7);
        let targets: Vec<_> = sink.iter().map(|e| e.to).collect();
        assert_eq!(targets, vec![0, 2, 3]);
    }
}
