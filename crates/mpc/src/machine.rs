//! The machine abstraction: local state + message handlers.

use crate::MachineId;

/// A message payload. Every payload reports its size in 64-bit words so the
/// simulator can meter communication and enforce per-round send/receive caps.
pub trait Payload: Send + Clone + std::fmt::Debug {
    /// Size of this message in 64-bit words (>= 1: even an empty signal
    /// occupies an envelope word on the wire).
    fn size_words(&self) -> usize;
}

/// A routed message.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending machine, or [`Envelope::EXTERNAL`] for injected updates.
    pub from: MachineId,
    /// Receiving machine.
    pub to: MachineId,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Pseudo-id used as `from` for messages injected from outside the
    /// cluster (the arriving edge update). External injections are not
    /// counted as machine-to-machine communication.
    pub const EXTERNAL: MachineId = MachineId::MAX;
}

/// Per-round context available to a stepping machine.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// The id of the machine being stepped.
    pub self_id: MachineId,
    /// Total number of machines in the cluster.
    pub n_machines: usize,
    /// Round number within the current update (starting at 1).
    pub round: u32,
}

/// Collects the messages a machine sends during one round.
#[derive(Debug)]
pub struct Outbox<M> {
    from: MachineId,
    msgs: Vec<(MachineId, M)>,
}

impl<M: Payload> Outbox<M> {
    pub(crate) fn new(from: MachineId) -> Self {
        Outbox {
            from,
            msgs: Vec::new(),
        }
    }

    /// Sends `msg` to machine `to` (delivered at the start of the next
    /// round). Sending to self is allowed and keeps the machine active.
    pub fn send(&mut self, to: MachineId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Sends `msg` to every machine in `0..n` except the sender.
    pub fn broadcast(&mut self, n_machines: usize, msg: M) {
        for to in 0..n_machines as MachineId {
            if to != self.from {
                self.send(to, msg.clone());
            }
        }
    }

    /// Total words queued so far (used for cap enforcement).
    pub fn queued_words(&self) -> usize {
        self.msgs.iter().map(|(_, m)| m.size_words()).sum()
    }

    pub(crate) fn into_envelopes(self) -> Vec<Envelope<M>> {
        let from = self.from;
        self.msgs
            .into_iter()
            .map(|(to, msg)| Envelope { from, to, msg })
            .collect()
    }
}

/// A machine program. Machines are event-driven: `on_messages` is invoked
/// exactly in the rounds where the machine has a non-empty inbox, which is
/// also the paper's notion of an *active* machine ("involved in
/// communication"). A machine with pending local work keeps itself active by
/// sending itself a message.
pub trait Machine: Send {
    /// The message type exchanged by this machine program.
    type Msg: Payload;

    /// Handles this round's inbox. Messages are delivered sorted by
    /// `(from, insertion order)`, deterministically.
    fn on_messages(
        &mut self,
        ctx: &RoundCtx,
        inbox: Vec<Envelope<Self::Msg>>,
        out: &mut Outbox<Self::Msg>,
    );

    /// Current local memory footprint in words; checked against the machine
    /// capacity `S` after every active round. The default (0) opts out of
    /// memory accounting.
    fn memory_words(&self) -> usize {
        0
    }
}

// Blanket payload impls for simple testing payloads.
impl Payload for u64 {
    fn size_words(&self) -> usize {
        1
    }
}

impl Payload for Vec<u64> {
    fn size_words(&self) -> usize {
        self.len().max(1)
    }
}

impl Payload for () {
    fn size_words(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_counts_words() {
        let mut out: Outbox<Vec<u64>> = Outbox::new(3);
        out.send(1, vec![1, 2, 3]);
        out.send(2, vec![9]);
        assert_eq!(out.queued_words(), 4);
        let envs = out.into_envelopes();
        assert_eq!(envs.len(), 2);
        assert_eq!(envs[0].from, 3);
        assert_eq!(envs[0].to, 1);
    }

    #[test]
    fn broadcast_skips_self() {
        let mut out: Outbox<u64> = Outbox::new(1);
        out.broadcast(4, 7);
        let envs = out.into_envelopes();
        let targets: Vec<_> = envs.iter().map(|e| e.to).collect();
        assert_eq!(targets, vec![0, 2, 3]);
    }
}
