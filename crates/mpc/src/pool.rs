//! A persistent worker pool for round execution.
//!
//! The legacy parallel backend ([`crate::Backend::ScopeThreads`]) paid a
//! full `std::thread::scope` spawn/join cycle — tens of microseconds per
//! thread — *every round*, which dwarfs the round itself on small
//! simulations. The pool spawns its threads once (per [`crate::Cluster`])
//! and reuses them for every round of every update and batch; dispatching a
//! round is one mutex/condvar handshake instead of N thread spawns.
//!
//! # Protocol
//!
//! [`WorkerPool::execute`] publishes a type-erased job (a raw pointer to a
//! caller-stack closure plus a monomorphized trampoline) under the pool
//! mutex, bumps the epoch counter, and wakes all workers. Each worker runs
//! the closure with its worker index, then decrements the in-flight count;
//! the last one signals the driver, which blocks until the count reaches
//! zero **before returning** — that blocking is what makes lending
//! non-`'static` stack data to the workers sound. Worker panics are caught,
//! recorded, and re-raised on the driver thread (mirroring the
//! scope-backend behaviour), so a poisoned round can never leave the driver
//! waiting forever.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased job: the closure the driver lends for one round.
#[derive(Clone, Copy)]
struct Job {
    /// `&F` as a raw pointer; valid until the epoch's in-flight count hits
    /// zero, which `execute` awaits before returning.
    data: *const (),
    /// Monomorphized trampoline reconstructing `&F` and calling it.
    call: unsafe fn(*const (), usize),
    /// Number of workers participating in this epoch (workers with index
    /// `>= participants` skip the job).
    participants: usize,
}

// SAFETY: the raw pointer is only dereferenced through `call` while the
// publishing `execute` call is blocked waiting for the epoch to drain, and
// the pointee is `Sync` (enforced by `execute`'s bound).
unsafe impl Send for Job {}

struct PoolState {
    epoch: u64,
    job: Option<Job>,
    in_flight: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    work: Condvar,
    /// The driver waits here for the epoch to drain.
    done: Condvar,
}

/// Long-lived round-execution threads with a barrier-style dispatch
/// protocol. See the module docs for the protocol and safety argument.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                in_flight: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dmpc-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(w)` on workers `w in 0..participants` concurrently and
    /// blocks until every participant has finished. Panics (on the caller)
    /// if any worker panicked inside `f`.
    ///
    /// Takes `&mut self`: one epoch is in flight at a time.
    pub fn execute<F: Fn(usize) + Sync>(&mut self, participants: usize, f: &F) {
        // A caller asking for more workers than exist has broken its
        // partitioning invariant; clamping silently would skip work chunks,
        // so fail loudly instead.
        assert!(
            participants <= self.threads(),
            "{participants} participants exceed the pool's {} threads",
            self.threads()
        );
        if participants == 0 {
            return;
        }
        /// Rebuilds `&F` from the erased pointer. SAFETY: called only while
        /// `execute` keeps `f` alive and blocked on the epoch drain.
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), idx: usize) {
            (*(data as *const F))(idx);
        }
        let mut st = self.shared.state.lock().expect("pool mutex");
        debug_assert!(st.in_flight == 0 && st.job.is_none(), "epoch overlap");
        st.job = Some(Job {
            data: f as *const F as *const (),
            call: trampoline::<F>,
            participants,
        });
        st.epoch += 1;
        st.in_flight = participants;
        self.shared.work.notify_all();
        while st.in_flight > 0 {
            st = self.shared.done.wait(st).expect("pool mutex");
        }
        st.job = None;
        let panicked = std::mem::replace(&mut st.panicked, false);
        drop(st);
        if panicked {
            panic!("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            // A worker that panicked outside a job is already recorded; a
            // second panic during unwinding would abort, so swallow here.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    match st.job {
                        // Participate in this epoch.
                        Some(job) if idx < job.participants => break job,
                        // Not a participant: keep waiting for the next one.
                        _ => continue,
                    }
                }
                st = shared.work.wait(st).expect("pool mutex");
            }
        };
        // Run outside the lock so participants overlap.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, idx) }));
        let mut st = shared.state.lock().expect("pool mutex");
        if result.is_err() {
            st.panicked = true;
        }
        st.in_flight -= 1;
        if st.in_flight == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_every_participant_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.execute(4, &|w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        let counts: Vec<usize> = hits.iter().map(|h| h.load(Ordering::SeqCst)).collect();
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn reusable_across_many_epochs() {
        let mut pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.execute(3, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 1500);
    }

    #[test]
    fn partial_participation_skips_high_indices() {
        let mut pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            pool.execute(2, &|w| {
                hits[w].fetch_add(1, Ordering::SeqCst);
            });
        }
        let counts: Vec<usize> = hits.iter().map(|h| h.load(Ordering::SeqCst)).collect();
        assert_eq!(counts, vec![10, 10, 0, 0]);
    }

    #[test]
    fn lends_stack_data_mutably_via_disjoint_indices() {
        let mut pool = WorkerPool::new(4);
        let mut slots = [0usize; 4];
        let base = SendPtr(slots.as_mut_ptr());
        pool.execute(4, &|w| unsafe {
            *base.slot(w) = w + 1;
        });
        assert_eq!(slots, [1, 2, 3, 4]);

        struct SendPtr(*mut usize);
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            fn slot(&self, i: usize) -> *mut usize {
                unsafe { self.0.add(i) }
            }
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.execute(2, &|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool is still usable after a poisoned epoch.
        let total = AtomicUsize::new(0);
        pool.execute(2, &|_| {
            total.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn zero_participants_is_a_noop() {
        let mut pool = WorkerPool::new(2);
        pool.execute(0, &|_| panic!("must not run"));
    }
}
