//! Parallel machine stepping.
//!
//! One simulator round steps many independent machines; this module shards
//! them across threads with `std::thread::scope`. Grouping is by *contiguous
//! machine-index ranges*, which lets us hand each worker a disjoint
//! `&mut [M]` slice safely (no locking on the hot path). Output order is the
//! group order, so the parallel backend is bit-identical to the serial one —
//! a property the test suite checks directly.

use crate::machine::{Envelope, Machine, Outbox, RoundCtx};
use crate::MachineId;

/// Machines (by index) paired with their per-round envelope batches.
type GroupedEnvelopes<Msg> = Vec<(usize, Vec<Envelope<Msg>>)>;

/// Steps the machines named in `groups` (sorted by machine index, each with
/// its inbox) and returns `(machine_index, outbound envelopes)` in group
/// order. `threads == 1` runs serially.
pub fn step_machines<M: Machine>(
    machines: &mut [M],
    groups: GroupedEnvelopes<M::Msg>,
    round: u32,
    n_machines: usize,
    threads: usize,
) -> GroupedEnvelopes<M::Msg> {
    if groups.is_empty() {
        return Vec::new();
    }
    debug_assert!(groups.windows(2).all(|w| w[0].0 < w[1].0), "groups sorted");

    if threads <= 1 || groups.len() == 1 {
        return groups
            .into_iter()
            .map(|(idx, inbox)| {
                (
                    idx,
                    step_one(&mut machines[idx], idx, inbox, round, n_machines),
                )
            })
            .collect();
    }

    // Partition groups into `threads` chunks of near-equal size; each chunk
    // covers a contiguous index range so machine slices can be split.
    let chunk_size = groups.len().div_ceil(threads);
    let chunks: Vec<GroupedEnvelopes<M::Msg>> = {
        let mut it = groups.into_iter().peekable();
        let mut out = Vec::new();
        while it.peek().is_some() {
            out.push(it.by_ref().take(chunk_size).collect());
        }
        out
    };

    let mut results: Vec<GroupedEnvelopes<M::Msg>> = Vec::with_capacity(chunks.len());
    for _ in 0..chunks.len() {
        results.push(Vec::new());
    }

    std::thread::scope(|scope| {
        let mut rest: &mut [M] = machines;
        let mut offset = 0usize;
        let mut handles = Vec::new();
        for (chunk, slot) in chunks.into_iter().zip(results.iter_mut()) {
            let hi = chunk.last().expect("non-empty chunk").0 + 1;
            let (left, right) = rest.split_at_mut(hi - offset);
            let base = offset;
            rest = right;
            offset = hi;
            handles.push(scope.spawn(move || {
                let mut local = Vec::with_capacity(chunk.len());
                for (idx, inbox) in chunk {
                    let m = &mut left[idx - base];
                    local.push((idx, step_one(m, idx, inbox, round, n_machines)));
                }
                *slot = local;
            }));
        }
        for h in handles {
            h.join().expect("worker thread panicked");
        }
    });

    results.into_iter().flatten().collect()
}

fn step_one<M: Machine>(
    machine: &mut M,
    idx: usize,
    inbox: Vec<Envelope<M::Msg>>,
    round: u32,
    n_machines: usize,
) -> Vec<Envelope<M::Msg>> {
    let ctx = RoundCtx {
        self_id: idx as MachineId,
        n_machines,
        round,
    };
    let mut out = Outbox::new(idx as MachineId);
    machine.on_messages(&ctx, inbox, &mut out);
    out.into_envelopes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Payload;

    #[derive(Clone, Debug)]
    struct Echo(u64);
    impl Payload for Echo {
        fn size_words(&self) -> usize {
            1
        }
    }

    struct Doubler {
        total: u64,
    }
    impl Machine for Doubler {
        type Msg = Echo;
        fn on_messages(
            &mut self,
            ctx: &RoundCtx,
            inbox: Vec<Envelope<Echo>>,
            out: &mut Outbox<Echo>,
        ) {
            for e in inbox {
                self.total += e.msg.0;
                out.send(
                    (ctx.self_id + 1) % ctx.n_machines as MachineId,
                    Echo(e.msg.0 * 2),
                );
            }
        }
    }

    fn run(threads: usize) -> (Vec<u64>, Vec<(usize, u64)>) {
        let mut machines: Vec<Doubler> = (0..64).map(|_| Doubler { total: 0 }).collect();
        let groups: Vec<(usize, Vec<Envelope<Echo>>)> = (0..64)
            .step_by(2)
            .map(|i| {
                (
                    i,
                    vec![Envelope {
                        from: Envelope::<Echo>::EXTERNAL,
                        to: i as MachineId,
                        msg: Echo(i as u64 + 1),
                    }],
                )
            })
            .collect();
        let out = step_machines(&mut machines, groups, 1, 64, threads);
        let sends: Vec<(usize, u64)> = out
            .iter()
            .map(|(idx, envs)| (*idx, envs[0].msg.0))
            .collect();
        (machines.iter().map(|m| m.total).collect(), sends)
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_groups_ok() {
        let mut machines: Vec<Doubler> = vec![];
        let out = step_machines(&mut machines, vec![], 1, 0, 4);
        assert!(out.is_empty());
    }
}
