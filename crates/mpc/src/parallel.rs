//! Machine stepping shared by every backend.
//!
//! One simulator round steps many independent machines. The round executor
//! ([`crate::Cluster`]) sorts the round's envelopes by `(to, from)` so each
//! active machine's inbox is one contiguous slice of the delivered buffer;
//! this module turns those slices into `on_messages` calls.
//!
//! All three backends — serial, legacy scoped threads, persistent worker
//! pool — run the *same* `worker_task` over contiguous chunks of the
//! group list, writing into per-worker scratch (`WorkerScratch`) whose
//! buffers the cluster owns and reuses across rounds. Because chunks cover
//! disjoint machine-index ranges and disjoint delivered ranges, and outputs
//! are merged in worker order, every backend produces bit-identical
//! metrics and machine states — a property the test suite checks directly.

use crate::machine::{Envelope, Machine, Outbox, RoundCtx};
use crate::MachineId;

/// One active machine's inbox this round: a contiguous range of the sorted
/// delivered buffer.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Group {
    /// The receiving machine.
    pub machine: MachineId,
    /// Start of its envelope run in the delivered buffer.
    pub start: usize,
    /// Length of the run.
    pub len: usize,
}

/// Per-worker reusable buffers. Owned by the cluster so steady-state rounds
/// allocate nothing: `inbox` is lent to machines and drained, `out` is the
/// outbox sink, `sent` records per-machine send volumes for cap metering.
#[derive(Debug)]
pub(crate) struct WorkerScratch<Msg> {
    pub inbox: Vec<Envelope<Msg>>,
    pub out: Vec<Envelope<Msg>>,
    pub sent: Vec<(MachineId, usize)>,
}

impl<Msg> Default for WorkerScratch<Msg> {
    fn default() -> Self {
        WorkerScratch {
            inbox: Vec::new(),
            out: Vec::new(),
            sent: Vec::new(),
        }
    }
}

/// Everything one round's stepping needs, shared across workers by
/// reference. Machines, worker scratch and the delivered buffer are raw
/// pointers because workers index disjoint ranges of them concurrently;
/// the access discipline is documented on [`worker_task`].
pub(crate) struct StepEnv<'a, M: Machine> {
    pub machines: *mut M,
    pub n_machines: usize,
    pub workers: *mut WorkerScratch<M::Msg>,
    /// The sorted delivered buffer. Ownership of every envelope in group
    /// ranges has been released by the cluster (`set_len(0)`); exactly one
    /// worker reads each slot, exactly once.
    pub delivered: *const Envelope<M::Msg>,
    pub groups: &'a [Group],
    /// Groups per worker chunk (the last chunk may be short).
    pub chunk: usize,
    pub round: u32,
}

// SAFETY: shared across worker threads by reference. The raw pointers are
// dereferenced only inside `worker_task`, which partitions all access by
// worker index (see its safety contract); `M: Send` and `M::Msg: Send`
// make moving that access across threads sound.
unsafe impl<M: Machine> Sync for StepEnv<'_, M> {}

impl<M: Machine> StepEnv<'_, M> {
    /// The group range worker `t` owns.
    fn group_range(&self, t: usize) -> (usize, usize) {
        let lo = (t * self.chunk).min(self.groups.len());
        let hi = ((t + 1) * self.chunk).min(self.groups.len());
        (lo, hi)
    }
}

/// Steps every group assigned to worker `t`: moves each group's envelopes
/// out of the delivered buffer into the worker's inbox scratch, runs the
/// machine with an outbox over the worker's output buffer, and records the
/// per-machine send volume.
///
/// # Safety
///
/// Caller must guarantee, for the duration of the call:
/// - `env.machines` / `env.workers` point to live arrays covering every
///   machine index in `env.groups` and worker index `t`;
/// - no two concurrent calls share a worker index or a machine index
///   (group chunks are disjoint and machine-sorted, one call per `t`);
/// - each envelope slot in a group range is read by exactly one call
///   (the cluster has released ownership of all of them via `set_len(0)`),
///   so the `ptr::read` here is the unique owner of each message.
pub(crate) unsafe fn worker_task<M: Machine>(env: &StepEnv<'_, M>, t: usize) {
    let (glo, ghi) = env.group_range(t);
    let w = &mut *env.workers.add(t);
    w.out.clear();
    w.sent.clear();
    for g in &env.groups[glo..ghi] {
        w.inbox.clear();
        for i in g.start..g.start + g.len {
            w.inbox.push(std::ptr::read(env.delivered.add(i)));
        }
        let ctx = RoundCtx {
            self_id: g.machine,
            n_machines: env.n_machines,
            round: env.round,
        };
        let machine = &mut *env.machines.add(g.machine as usize);
        let mut out = Outbox::open(g.machine, &mut w.out);
        machine.on_messages(&ctx, &mut w.inbox, &mut out);
        w.sent.push((g.machine, out.queued_words()));
        // Anything the machine left behind is discarded (documented on
        // `Machine::on_messages`); clearing also keeps capacity for reuse.
        w.inbox.clear();
    }
}

/// Legacy parallel backend: spawn `used` scoped threads for this round and
/// join them. Same task, same output discipline as the pool — kept for
/// differential testing and as the zero-persistent-state option.
pub(crate) fn step_scope<M: Machine>(env: &StepEnv<'_, M>, used: usize) {
    std::thread::scope(|scope| {
        for t in 0..used {
            scope.spawn(move || unsafe { worker_task(env, t) });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Payload;

    #[derive(Clone, Debug)]
    struct Echo(u64);
    impl Payload for Echo {
        fn size_words(&self) -> usize {
            1
        }
    }

    struct Doubler {
        total: u64,
    }
    impl Machine for Doubler {
        type Msg = Echo;
        fn on_messages(
            &mut self,
            ctx: &RoundCtx,
            inbox: &mut Vec<Envelope<Echo>>,
            out: &mut Outbox<Echo>,
        ) {
            for e in inbox.drain(..) {
                self.total += e.msg.0;
                out.send(
                    (ctx.self_id + 1) % ctx.n_machines as MachineId,
                    Echo(e.msg.0 * 2),
                );
            }
        }
    }

    /// Runs one hand-built round through `worker_task` with the given
    /// worker count, returning machine states and per-worker outputs
    /// flattened in worker order.
    fn run(threads: usize) -> (Vec<u64>, Vec<(MachineId, u64)>) {
        let mut machines: Vec<Doubler> = (0..64).map(|_| Doubler { total: 0 }).collect();
        let mut delivered: Vec<Envelope<Echo>> = Vec::new();
        let mut groups: Vec<Group> = Vec::new();
        for i in (0..64usize).step_by(2) {
            groups.push(Group {
                machine: i as MachineId,
                start: delivered.len(),
                len: 1,
            });
            delivered.push(Envelope {
                from: Envelope::<Echo>::EXTERNAL,
                to: i as MachineId,
                msg: Echo(i as u64 + 1),
            });
        }
        let used = threads.min(groups.len()).max(1);
        let chunk = groups.len().div_ceil(used);
        let mut workers: Vec<WorkerScratch<Echo>> = Vec::new();
        workers.resize_with(used, WorkerScratch::default);
        let env = StepEnv {
            machines: machines.as_mut_ptr(),
            n_machines: 64,
            workers: workers.as_mut_ptr(),
            delivered: delivered.as_ptr(),
            groups: &groups,
            chunk,
            round: 1,
        };
        // Release ownership of the delivered envelopes to the workers.
        unsafe { delivered.set_len(0) };
        if used == 1 {
            unsafe { worker_task(&env, 0) };
        } else {
            step_scope(&env, used);
        }
        let outs: Vec<(MachineId, u64)> = workers
            .iter()
            .flat_map(|w| w.out.iter().map(|e| (e.to, e.msg.0)))
            .collect();
        (machines.iter().map(|m| m.total).collect(), outs)
    }

    #[test]
    fn scope_matches_serial() {
        let serial = run(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }
}
