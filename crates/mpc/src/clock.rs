//! The simulated service clock and exact latency histograms.
//!
//! The service front-end is deterministic end-to-end, so its clock is a
//! plain tick counter ([`SimClock`]): ticks advance only when the harness
//! says so, never from wall time. Latency is metered in three units —
//! simulator rounds, clock ticks, and wall-clock seconds — and each unit
//! aggregates into a [`LatencyStats`], which keeps the raw samples and
//! reports exact nearest-rank percentiles (no bucketing error at the
//! sample counts a service run produces).

/// Deterministic simulated clock: a monotone tick counter. One tick is one
/// admission opportunity of the service loop — arrivals land on ticks and
/// window deadlines are measured in ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimClock {
    now: u64,
}

impl SimClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances by one tick and returns the new time.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Advances by `ticks` at once (idle fast-forward between arrivals).
    pub fn advance(&mut self, ticks: u64) {
        self.now += ticks;
    }
}

/// An exact latency histogram: stores every recorded sample and answers
/// nearest-rank percentiles over the sorted set. Samples are `f64` so one
/// type serves rounds (integral), ticks (integral), and wall-clock seconds.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Nearest-rank percentile `p` in `(0, 100]` (0 when empty): the
    /// smallest sample such that at least `p`% of samples are `<=` it.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Median (nearest rank).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 90th percentile (nearest rank).
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// 99th percentile (nearest rank).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Absorbs another histogram's samples.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ticks_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        c.advance(9);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn empty_stats_report_zero() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let mut s = LatencyStats::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p90(), 90.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = LatencyStats::new();
        s.record(7.0);
        assert_eq!(s.p50(), 7.0);
        assert_eq!(s.p99(), 7.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 3.0);
    }
}
