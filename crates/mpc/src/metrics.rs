//! Metering: the three DMPC complexity quantities plus capacity violations
//! and the communication-entropy metric from the paper's Section 8.

use crate::MachineId;
use std::collections::HashMap;

/// A violation of the model's capacity constraints. The simulator records
/// violations instead of aborting so experiments can report them; the test
/// suite asserts that well-formed algorithms produce none.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A machine sent more than `S` words in one round.
    SendCap {
        /// Offending machine.
        machine: MachineId,
        /// Words actually sent.
        words: usize,
        /// The cap `S`.
        cap: usize,
        /// Round within the update.
        round: u32,
    },
    /// A machine received more than `S` words in one round.
    RecvCap {
        /// Offending machine.
        machine: MachineId,
        /// Words actually received.
        words: usize,
        /// The cap `S`.
        cap: usize,
        /// Round within the update.
        round: u32,
    },
    /// A machine's resident memory exceeded `S` words after a round.
    Memory {
        /// Offending machine.
        machine: MachineId,
        /// Resident words.
        words: usize,
        /// The cap `S`.
        cap: usize,
        /// Round within the update.
        round: u32,
    },
    /// An update did not quiesce within the round limit.
    RoundLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A message was addressed to a killed machine and dropped (chaos
    /// plane; see [`crate::cluster::Cluster::kill`]). One violation per
    /// dropped message — correct recovery protocols never message the dead.
    DeadMachine {
        /// The dead addressee.
        machine: MachineId,
        /// Round within the update.
        round: u32,
    },
    /// A message was in flight (sent, or queued in the victim's inbox) when
    /// a *mid-round* kill fired, and was quarantined. Unlike
    /// [`Violation::DeadMachine`] — which marks protocol bugs (messaging a
    /// machine known to be dead) — `LostInFlight` is the expected,
    /// exactly-accounted cost of an in-round failure: the flow-map
    /// conservation law `sent == delivered + lost` holds word-for-word over
    /// every machine-to-machine message (external injections are flagged
    /// and excluded, since injections are free in the model).
    LostInFlight {
        /// The machine that died with the message addressed to it.
        machine: MachineId,
        /// Round within the update at which the message was quarantined.
        round: u32,
        /// Exact payload size of the lost message, in words.
        words: usize,
        /// True if the lost message was an external injection (not counted
        /// in machine-to-machine flow conservation).
        external: bool,
    },
}

/// Per-round measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Round number within the update (1-based).
    pub round: u32,
    /// Machines stepped this round (= machines receiving messages; stepped
    /// machines are exactly the paper's "active" machines).
    pub active_machines: usize,
    /// Messages delivered this round.
    pub messages: usize,
    /// Total words delivered this round (the paper's "communication per
    /// round").
    pub words: usize,
    /// Largest per-machine receive volume this round.
    pub max_recv_words: usize,
    /// Largest per-machine send volume this round.
    pub max_send_words: usize,
}

/// Measurements for one update (= one injected operation driven to
/// quiescence).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateMetrics {
    /// Number of synchronous rounds the update needed.
    pub rounds: usize,
    /// Maximum over rounds of active machines.
    pub max_active_machines: usize,
    /// Distinct machines active in *any* round of the update — the paper's
    /// "machines used per update". `max_active_machines` bounds one round;
    /// this counts the whole footprint (a 3-round update touching disjoint
    /// pairs has `max_active_machines = 2` but `machines_touched = 6`).
    pub machines_touched: usize,
    /// Maximum over rounds of words communicated.
    pub max_words_per_round: usize,
    /// Total words over all rounds.
    pub total_words: usize,
    /// Total messages over all rounds.
    pub total_messages: usize,
    /// Total machine-to-machine words *sent* over all rounds. Equal to
    /// `total_words` minus delivered external-injection words when no
    /// mid-round kill fired; under in-round chaos the conservation law is
    /// `total_words_sent == delivered machine words + lost machine words`
    /// (see [`Violation::LostInFlight`]).
    pub total_words_sent: usize,
    /// Words quarantined by mid-round kills (machine-to-machine only).
    pub lost_words: usize,
    /// Messages quarantined by mid-round kills (machine-to-machine only).
    pub lost_messages: usize,
    /// Per-round detail.
    pub per_round: Vec<RoundMetrics>,
    /// Capacity violations observed.
    pub violations: Vec<Violation>,
    /// Pairwise flows (src, dst) -> words, if flow tracking is enabled.
    pub flows: HashMap<(MachineId, MachineId), u64>,
}

impl UpdateMetrics {
    /// Shannon entropy (bits) of the normalized pairwise-flow distribution —
    /// the metric proposed in the paper's Section 8. Returns 0 for empty
    /// flows. Higher = communication spread more uniformly across machine
    /// pairs; coordinator-centric algorithms score low.
    pub fn flow_entropy_bits(&self) -> f64 {
        entropy_bits(self.flows.values().copied())
    }

    /// True if the update respected every model constraint.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Shannon entropy in bits of an unnormalized weight distribution.
pub fn entropy_bits<I: IntoIterator<Item = u64>>(weights: I) -> f64 {
    let ws: Vec<u64> = weights.into_iter().filter(|&w| w > 0).collect();
    let total: u64 = ws.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -ws.iter()
        .map(|&w| {
            let p = w as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Cost of a *batch* of `k` edge updates driven as one unit of work: totals
/// over every round the batch needed, plus the per-update amortized views
/// the batch-dynamic literature reports (Nowicki–Onak, arXiv:2002.07800).
///
/// A batch may be executed as one quiescence run ([`crate::Cluster::run_batch`]),
/// as several chunked runs, or as `k` looped single-update runs — the
/// accounting is identical, so looped and genuinely-batched execution are
/// directly comparable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Updates the batch logically contains (the amortization denominator).
    /// Updates cancelled inside the batch still count: the caller asked for
    /// them, so they are free work the batch absorbed.
    pub updates: usize,
    /// Total synchronous rounds across the batch's runs.
    pub rounds: usize,
    /// Maximum over rounds of active machines (under the combined load).
    pub max_active_machines: usize,
    /// Maximum over the batch's runs of distinct machines touched per run
    /// (chunked execution cannot reconstruct the distinct set across runs,
    /// so the per-run maximum is the honest aggregate).
    pub machines_touched: usize,
    /// Maximum over rounds of words communicated (under the combined load).
    pub max_words_per_round: usize,
    /// Total words over all rounds.
    pub total_words: usize,
    /// Total messages over all rounds.
    pub total_messages: usize,
    /// Words quarantined by mid-round kills across the batch's runs.
    pub lost_words: usize,
    /// Messages quarantined by mid-round kills across the batch's runs.
    pub lost_messages: usize,
    /// Capacity violations observed under the combined load.
    pub violations: usize,
    /// Conflict groups the batch's structural phases partitioned into,
    /// summed over the batch's runs (0 when no structural phase ran, or for
    /// drivers that predate the conflict scheduler). Reported for both
    /// schedulers: `Serialized` still computes the partition it declines to
    /// exploit.
    pub conflict_groups: usize,
    /// Largest conflict group (structural items that must serialize) across
    /// the batch's runs — the round floor of the conflict scheduler.
    pub conflict_depth: usize,
    /// Maximum structural protocol lanes concurrently in flight across the
    /// batch's runs (1 under `Scheduler::Serialized` whenever a structural
    /// phase ran).
    pub max_lanes: usize,
}

impl BatchMetrics {
    /// Wraps one quiescence run that processed `updates` logical updates.
    pub fn from_run(updates: usize, m: &UpdateMetrics) -> Self {
        let mut b = BatchMetrics {
            updates,
            ..Default::default()
        };
        b.absorb_run(m);
        b
    }

    /// Folds one quiescence run's metrics into the batch totals without
    /// changing the update count (used for chunked execution; adjust
    /// [`BatchMetrics::updates`] separately).
    pub fn absorb_run(&mut self, m: &UpdateMetrics) {
        self.rounds += m.rounds;
        self.max_active_machines = self.max_active_machines.max(m.max_active_machines);
        self.machines_touched = self.machines_touched.max(m.machines_touched);
        self.max_words_per_round = self.max_words_per_round.max(m.max_words_per_round);
        self.total_words += m.total_words;
        self.total_messages += m.total_messages;
        self.lost_words += m.lost_words;
        self.lost_messages += m.lost_messages;
        self.violations += m.violations.len();
    }

    /// Folds one single-update run into the totals *and* counts it as one
    /// logical update (the looped-execution accounting).
    pub fn absorb_update(&mut self, m: &UpdateMetrics) {
        self.updates += 1;
        self.absorb_run(m);
    }

    /// Merges another batch (e.g. successive chunks of a longer stream).
    pub fn merge(&mut self, other: &BatchMetrics) {
        self.updates += other.updates;
        self.rounds += other.rounds;
        self.max_active_machines = self.max_active_machines.max(other.max_active_machines);
        self.machines_touched = self.machines_touched.max(other.machines_touched);
        self.max_words_per_round = self.max_words_per_round.max(other.max_words_per_round);
        self.total_words += other.total_words;
        self.total_messages += other.total_messages;
        self.lost_words += other.lost_words;
        self.lost_messages += other.lost_messages;
        self.violations += other.violations;
        self.conflict_groups += other.conflict_groups;
        self.conflict_depth = self.conflict_depth.max(other.conflict_depth);
        self.max_lanes = self.max_lanes.max(other.max_lanes);
    }

    /// Amortized rounds per update (0 for an empty batch).
    pub fn amortized_rounds(&self) -> f64 {
        ratio(self.rounds, self.updates)
    }

    /// Amortized communication (words) per update.
    pub fn amortized_words(&self) -> f64 {
        ratio(self.total_words, self.updates)
    }

    /// Amortized messages per update.
    pub fn amortized_messages(&self) -> f64 {
        ratio(self.total_messages, self.updates)
    }

    /// True if the batch respected every model constraint.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Cost of a *batch* of `q` read-only queries driven as one unit of work —
/// the query-plane counterpart of [`BatchMetrics`]. A query wave may run as
/// one quiescence run, as several chunked runs (the drivers chunk waves so
/// fan-in respects the machine capacity `S`), or as `q` looped single-query
/// runs; the accounting is identical, so looped and batched execution are
/// directly comparable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryMetrics {
    /// Queries answered (the amortization denominator).
    pub queries: usize,
    /// Total synchronous rounds across the wave's runs.
    pub rounds: usize,
    /// Maximum over rounds of active machines (under the combined load).
    pub max_active_machines: usize,
    /// Maximum over the wave's runs of distinct machines touched per run.
    pub machines_touched: usize,
    /// Maximum over rounds of words communicated.
    pub max_words_per_round: usize,
    /// Total words over all rounds. External query injections are free (like
    /// update injections); this counts the machine-to-machine join traffic.
    pub total_words: usize,
    /// Total messages over all rounds.
    pub total_messages: usize,
    /// Capacity violations observed under the combined load.
    pub violations: usize,
}

impl QueryMetrics {
    /// Wraps one quiescence run that answered `queries` queries.
    pub fn from_run(queries: usize, m: &UpdateMetrics) -> Self {
        let mut q = QueryMetrics {
            queries,
            ..Default::default()
        };
        q.absorb_run(m);
        q
    }

    /// A single query the algorithm does not support: counted, zero cost.
    pub fn one_unanswered() -> Self {
        QueryMetrics {
            queries: 1,
            ..Default::default()
        }
    }

    /// Folds one quiescence run's metrics into the totals without changing
    /// the query count (chunked execution; adjust [`QueryMetrics::queries`]
    /// separately).
    pub fn absorb_run(&mut self, m: &UpdateMetrics) {
        self.rounds += m.rounds;
        self.max_active_machines = self.max_active_machines.max(m.max_active_machines);
        self.machines_touched = self.machines_touched.max(m.machines_touched);
        self.max_words_per_round = self.max_words_per_round.max(m.max_words_per_round);
        self.total_words += m.total_words;
        self.total_messages += m.total_messages;
        self.violations += m.violations.len();
    }

    /// Merges another wave (successive chunks, or a whole looped baseline).
    pub fn merge(&mut self, other: &QueryMetrics) {
        self.queries += other.queries;
        self.rounds += other.rounds;
        self.max_active_machines = self.max_active_machines.max(other.max_active_machines);
        self.machines_touched = self.machines_touched.max(other.machines_touched);
        self.max_words_per_round = self.max_words_per_round.max(other.max_words_per_round);
        self.total_words += other.total_words;
        self.total_messages += other.total_messages;
        self.violations += other.violations;
    }

    /// Amortized rounds per query (0 for an empty wave).
    pub fn amortized_rounds(&self) -> f64 {
        ratio(self.rounds, self.queries)
    }

    /// Amortized communication (words) per query.
    pub fn amortized_words(&self) -> f64 {
        ratio(self.total_words, self.queries)
    }

    /// Amortized messages per query.
    pub fn amortized_messages(&self) -> f64 {
        ratio(self.total_messages, self.queries)
    }

    /// True if the wave respected every model constraint.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Cost of the chaos plane's recovery work — the Table-1-style accounting
/// for machine churn. Separate from [`BatchMetrics`] so harnesses can report
/// workload cost and recovery cost side by side: recovery rounds/words are
/// real model traffic (handoffs flow through the metered `Outbox`), while
/// `replay_*` counts the off-cluster replica replay that rebuilds a killed
/// machine's state before the metered handoff ships it back in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryMetrics {
    /// Chaos events applied (kills are free; revives/splits/merges meter).
    pub events: usize,
    /// Total synchronous rounds across all recovery/migration runs.
    pub rounds: usize,
    /// Maximum over recovery runs of distinct machines touched per run.
    pub machines_touched: usize,
    /// Maximum over rounds of words communicated during recovery.
    pub max_words_per_round: usize,
    /// Total words over all recovery/migration rounds.
    pub total_words: usize,
    /// Total messages over all recovery/migration rounds.
    pub total_messages: usize,
    /// Logical updates replayed onto recovery replicas (checkpoint-suffix
    /// replay, or full-log replay for algorithms without snapshots).
    pub replay_updates: usize,
    /// Rounds the replica replays consumed (off-cluster work).
    pub replay_rounds: usize,
    /// Capacity violations observed during recovery traffic.
    pub violations: usize,
}

impl RecoveryMetrics {
    /// Folds one metered recovery/migration run (a revive handoff or a
    /// shard migration) into the totals and counts it as one event.
    pub fn absorb_event(&mut self, m: &UpdateMetrics) {
        self.events += 1;
        self.rounds += m.rounds;
        self.machines_touched = self.machines_touched.max(m.machines_touched);
        self.max_words_per_round = self.max_words_per_round.max(m.max_words_per_round);
        self.total_words += m.total_words;
        self.total_messages += m.total_messages;
        self.violations += m.violations.len();
    }

    /// Folds a replica's replay cost (off-cluster state reconstruction).
    pub fn absorb_replay(&mut self, b: &BatchMetrics) {
        self.replay_updates += b.updates;
        self.replay_rounds += b.rounds;
        self.violations += b.violations;
    }

    /// Merges another recovery tally.
    pub fn merge(&mut self, other: &RecoveryMetrics) {
        self.events += other.events;
        self.rounds += other.rounds;
        self.machines_touched = self.machines_touched.max(other.machines_touched);
        self.max_words_per_round = self.max_words_per_round.max(other.max_words_per_round);
        self.total_words += other.total_words;
        self.total_messages += other.total_messages;
        self.replay_updates += other.replay_updates;
        self.replay_rounds += other.replay_rounds;
        self.violations += other.violations;
    }

    /// True if every recovery run respected every model constraint.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Worst-case (max) and total aggregates across a sequence of updates — the
/// exact row format of the paper's Table 1.
#[derive(Clone, Debug, Default)]
pub struct AggregateMetrics {
    /// Updates aggregated.
    pub updates: usize,
    /// Worst-case rounds per update.
    pub max_rounds: usize,
    /// Mean rounds per update.
    pub mean_rounds: f64,
    /// Worst-case active machines in any round.
    pub max_active_machines: usize,
    /// Mean over updates of max-active-machines.
    pub mean_active_machines: f64,
    /// Worst-case distinct machines touched by one update.
    pub max_machines_touched: usize,
    /// Mean over updates of distinct machines touched.
    pub mean_machines_touched: f64,
    /// Worst-case words per round.
    pub max_words_per_round: usize,
    /// Mean over updates of max-words-per-round.
    pub mean_words_per_round: f64,
    /// Total violations across updates.
    pub violations: usize,
    /// Mean flow entropy in bits (only meaningful with flow tracking on).
    pub mean_entropy_bits: f64,
}

impl AggregateMetrics {
    /// Folds one update's metrics into the aggregate.
    pub fn absorb(&mut self, u: &UpdateMetrics) {
        let k = self.updates as f64;
        self.updates += 1;
        let k1 = self.updates as f64;
        self.max_rounds = self.max_rounds.max(u.rounds);
        self.mean_rounds = (self.mean_rounds * k + u.rounds as f64) / k1;
        self.max_active_machines = self.max_active_machines.max(u.max_active_machines);
        self.mean_active_machines =
            (self.mean_active_machines * k + u.max_active_machines as f64) / k1;
        self.max_machines_touched = self.max_machines_touched.max(u.machines_touched);
        self.mean_machines_touched =
            (self.mean_machines_touched * k + u.machines_touched as f64) / k1;
        self.max_words_per_round = self.max_words_per_round.max(u.max_words_per_round);
        self.mean_words_per_round =
            (self.mean_words_per_round * k + u.max_words_per_round as f64) / k1;
        self.violations += u.violations.len();
        self.mean_entropy_bits = (self.mean_entropy_bits * k + u.flow_entropy_bits()) / k1;
    }
}

/// Least-squares slope of `log2(y)` against `log2(x)` — used to fit the
/// growth exponent of communication/machines against `N` in the scaling
/// experiments (`y ~ x^slope`).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.log2(), y.log2()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_uniform_vs_concentrated() {
        let uniform = entropy_bits([10, 10, 10, 10]);
        assert!((uniform - 2.0).abs() < 1e-9);
        let concentrated = entropy_bits([40, 0, 0, 0]);
        assert_eq!(concentrated, 0.0);
        let skewed = entropy_bits([30, 5, 3, 2]);
        assert!(skewed > 0.0 && skewed < uniform);
    }

    #[test]
    fn aggregate_absorbs_worst_cases() {
        let mut agg = AggregateMetrics::default();
        let u1 = UpdateMetrics {
            rounds: 3,
            max_active_machines: 5,
            max_words_per_round: 100,
            ..Default::default()
        };
        let u2 = UpdateMetrics {
            rounds: 7,
            max_active_machines: 2,
            max_words_per_round: 50,
            ..Default::default()
        };
        agg.absorb(&u1);
        agg.absorb(&u2);
        assert_eq!(agg.updates, 2);
        assert_eq!(agg.max_rounds, 7);
        assert_eq!(agg.max_active_machines, 5);
        assert_eq!(agg.max_words_per_round, 100);
        assert!((agg.mean_rounds - 5.0).abs() < 1e-9);
    }

    #[test]
    fn slope_fits_power_laws() {
        let sqrt_pts: Vec<(f64, f64)> = (4..12)
            .map(|i| {
                let x = (1u64 << i) as f64;
                (x, x.sqrt() * 3.0)
            })
            .collect();
        assert!((loglog_slope(&sqrt_pts) - 0.5).abs() < 1e-9);
        let flat: Vec<(f64, f64)> = (4..12).map(|i| ((1u64 << i) as f64, 5.0)).collect();
        assert!(loglog_slope(&flat).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (4..12)
            .map(|i| ((1u64 << i) as f64, (1u64 << i) as f64))
            .collect();
        assert!((loglog_slope(&linear) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_metrics_absorb_and_merge() {
        let u1 = UpdateMetrics {
            rounds: 3,
            max_active_machines: 5,
            max_words_per_round: 100,
            total_words: 150,
            total_messages: 9,
            ..Default::default()
        };
        let u2 = UpdateMetrics {
            rounds: 7,
            max_active_machines: 2,
            max_words_per_round: 60,
            total_words: 80,
            total_messages: 4,
            violations: vec![Violation::RoundLimit { limit: 8 }],
            ..Default::default()
        };
        let mut b = BatchMetrics::from_run(4, &u1);
        b.absorb_run(&u2);
        assert_eq!(b.updates, 4);
        assert_eq!(b.rounds, 10);
        assert_eq!(b.max_active_machines, 5);
        assert_eq!(b.max_words_per_round, 100);
        assert_eq!(b.total_words, 230);
        assert_eq!(b.violations, 1);
        assert!(!b.clean());
        assert!((b.amortized_rounds() - 2.5).abs() < 1e-9);
        assert!((b.amortized_words() - 57.5).abs() < 1e-9);

        let mut looped = BatchMetrics::default();
        looped.absorb_update(&u1);
        looped.absorb_update(&u2);
        assert_eq!(looped.updates, 2);
        assert_eq!(looped.rounds, 10);

        let mut merged = b.clone();
        merged.merge(&looped);
        assert_eq!(merged.updates, 6);
        assert_eq!(merged.rounds, 20);
        assert_eq!(merged.total_messages, 26);
    }

    #[test]
    fn query_metrics_absorb_and_merge() {
        let u1 = UpdateMetrics {
            rounds: 2,
            max_active_machines: 4,
            max_words_per_round: 30,
            total_words: 40,
            total_messages: 10,
            ..Default::default()
        };
        let u2 = UpdateMetrics {
            rounds: 2,
            max_active_machines: 6,
            total_words: 60,
            total_messages: 15,
            violations: vec![Violation::RoundLimit { limit: 8 }],
            ..Default::default()
        };
        let mut w = QueryMetrics::from_run(16, &u1);
        w.absorb_run(&u2);
        assert_eq!(w.queries, 16);
        assert_eq!(w.rounds, 4);
        assert_eq!(w.max_active_machines, 6);
        assert_eq!(w.total_words, 100);
        assert!((w.amortized_rounds() - 0.25).abs() < 1e-9);
        assert!((w.amortized_words() - 6.25).abs() < 1e-9);
        assert!(!w.clean());

        let mut looped = QueryMetrics::default();
        looped.merge(&QueryMetrics::from_run(1, &u1));
        looped.merge(&QueryMetrics::one_unanswered());
        assert_eq!(looped.queries, 2);
        assert_eq!(looped.rounds, 2);
        assert!((looped.amortized_rounds() - 1.0).abs() < 1e-9);
        assert!(looped.clean());
        assert_eq!(QueryMetrics::default().amortized_rounds(), 0.0);
    }

    #[test]
    fn batch_metrics_empty_is_zero() {
        let b = BatchMetrics::default();
        assert_eq!(b.amortized_rounds(), 0.0);
        assert_eq!(b.amortized_messages(), 0.0);
        assert!(b.clean());
    }

    #[test]
    fn update_metrics_entropy_from_flows() {
        let mut u = UpdateMetrics::default();
        u.flows.insert((0, 1), 10);
        u.flows.insert((0, 2), 10);
        assert!((u.flow_entropy_bits() - 1.0).abs() < 1e-9);
        assert!(u.clean());
        u.violations.push(Violation::RoundLimit { limit: 8 });
        assert!(!u.clean());
    }
}
