//! Scaling sweeps with fitted growth exponents vs N (checks the *shape* of
//! every Table 1 row: rounds flat; communication ~ sqrt(N) or flat).

use dmpc_bench::sweep;
use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::report::render_sweep;
use dmpc_matching::{DmpcMaximalMatching, DmpcThreeHalves};
use dmpc_reduction::ReducedConnectivity;

fn main() {
    let sizes = [64usize, 128, 256, 512];
    let steps = 120;

    let sw = sweep(
        |_, p| Box::new(DmpcMaximalMatching::new(p)),
        &sizes,
        steps,
        1,
        false,
    );
    println!("{}", render_sweep("maximal matching (Table 1 row 1)", &sw));

    let sw = sweep(
        |_, p| Box::new(DmpcThreeHalves::new(p)),
        &sizes,
        steps,
        1,
        false,
    );
    println!("{}", render_sweep("3/2-approx matching (row 2)", &sw));

    let sw = sweep(
        |_, p| Box::new(DmpcConnectivity::new(p)),
        &sizes,
        steps,
        1,
        true,
    );
    println!("{}", render_sweep("connectivity (row 4)", &sw));

    let sw = sweep(
        |n, _| Box::new(ReducedConnectivity::new(n)),
        &sizes,
        steps,
        1,
        true,
    );
    println!(
        "{}",
        render_sweep("reduction/HDT connectivity (row 7)", &sw)
    );

    println!("Expected: rounds exponent ~0 for rows 1-4; communication exponent ~0.5");
    println!("for sqrt(N) rows and ~0 for the reduction rows.");
}
