//! Continuous-service scaling: end-to-end op latency and amortized cost
//! under clocked arrivals, swept over arrival rate x window policy x
//! read/write mix.
//!
//! **Why this exists.** The paper targets "systems serving heavy traffic
//! from millions of users" — a *service*, not an offline replay. PR 10's
//! front-end (`dmpc-service`) drives ops from seeded arrival processes
//! through a bounded admission buffer into size-or-deadline windows; this
//! bin measures what that buys: at every swept arrival rate the windowed
//! policy must beat per-op admission on amortized rounds/op (batching is
//! the paper's whole mechanism), while p50/p99 end-to-end latency — in
//! rounds, ticks, and wall-clock — quantifies what coalescing costs the
//! individual op. Backpressure cells pin the shed/block accounting
//! (`arrived == admitted + shed`, blocking loses nothing), and every cell
//! replays its recorded windows offline and asserts digest identity, so
//! the numbers always describe the *correct* online system.
//!
//! CI smoke-runs this at tiny sizes and `ci/check_service_slo.py` gates
//! both the fresh run and the committed canonical numbers (p99 latency
//! ceilings live in `ci/perf_floors.json` under `"pr10"`). Canonical
//! numbers live in `BENCH_PR10.json`.
//!
//! Usage: `service_scaling [n] [ops] [json-path]` (defaults: 256, 512,
//! `BENCH_PR10.json`).

use dmpc_connectivity::{DmpcConnectivity, DmpcMst};
use dmpc_core::{DmpcParams, ElasticAlgorithm};
use dmpc_graph::arrivals::{arrival_trace, Arrival, ArrivalProcess};
use dmpc_graph::streams::{self, QueryMix, TargetDist};
use dmpc_matching::DmpcMaximalMatching;
use dmpc_service::{
    replay_windows, run_service, BackpressurePolicy, ServiceAlgorithm, ServiceConfig,
    ServiceReport, UnweightedService, WeightedEdgeService, WindowPolicy,
};

const CANON_N: usize = 256;
const CANON_OPS: usize = 512;
const SEED: u64 = 42;
/// Steady arrival rates swept (ops/tick): under-, near-, and over-running
/// the service's window cadence.
const RATES: &[f64] = &[0.5, 2.0, 8.0];
/// Read/write mixes swept (reads per 100 ops).
const MIX_PCTS: &[u32] = &[95, 50];

/// One service run, tagged with its sweep coordinates.
struct Cell {
    alg: &'static str,
    process: &'static str,
    rate: f64,
    read_pct: u32,
    policy: &'static str,
    backpressure: &'static str,
    rep: ServiceReport,
    offline_digest: u64,
}

/// Runs one service cell and its offline replay; asserts the digest and
/// answer equivalence that makes every reported number trustworthy.
fn run_cell<A, F>(make: F, trace: &[Arrival], cfg: &ServiceConfig) -> (ServiceReport, u64)
where
    A: ServiceAlgorithm + ElasticAlgorithm,
    F: Fn() -> A,
{
    let rep = run_service(&make, trace, cfg);
    let mut fresh = make();
    let off = replay_windows(&mut fresh, &rep.windows);
    assert_eq!(
        off.final_digest, rep.final_digest,
        "online service diverged from offline replay"
    );
    assert_eq!(off.answers, rep.answers, "answers diverged from replay");
    (rep, off.final_digest)
}

fn windowed_cfg() -> ServiceConfig {
    ServiceConfig {
        window: WindowPolicy::windowed(32, 8),
        buffer_cap: 4096,
        backpressure: BackpressurePolicy::Shed,
        ..ServiceConfig::default()
    }
}

fn per_op_cfg() -> ServiceConfig {
    ServiceConfig {
        window: WindowPolicy::per_op(),
        buffer_cap: 4096,
        backpressure: BackpressurePolicy::Shed,
        ..ServiceConfig::default()
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".into()
    }
}

fn cell_json(c: &Cell) -> String {
    let r = &c.rep;
    format!(
        concat!(
            "    {{\"alg\": \"{}\", \"process\": \"{}\", \"rate\": {}, ",
            "\"read_pct\": {}, \"policy\": \"{}\", \"backpressure\": \"{}\",\n",
            "     \"arrived\": {}, \"admitted\": {}, \"shed\": {}, ",
            "\"windows\": {}, \"span_ticks\": {}, \"wall_secs\": {},\n",
            "     \"amortized_rounds_per_op\": {}, ",
            "\"peak_buffered\": {}, \"peak_parked\": {}, \"retries\": {},\n",
            "     \"write_p50_rounds\": {}, \"write_p90_rounds\": {}, ",
            "\"write_p99_rounds\": {}, \"write_p99_ticks\": {}, \"write_p99_secs\": {},\n",
            "     \"read_p50_rounds\": {}, \"read_p90_rounds\": {}, ",
            "\"read_p99_rounds\": {}, \"read_p99_ticks\": {}, \"read_p99_secs\": {},\n",
            "     \"violations\": {}, \"digest\": {}, \"offline_digest\": {}, ",
            "\"digest_match\": {}}}"
        ),
        c.alg,
        c.process,
        json_f64(c.rate),
        c.read_pct,
        c.policy,
        c.backpressure,
        r.arrived,
        r.admitted,
        r.shed.len(),
        r.windows.len(),
        r.ticks,
        json_f64(r.wall_secs),
        json_f64(r.amortized_rounds_per_op()),
        r.peak_buffered,
        r.peak_parked,
        r.retries,
        json_f64(r.write_latency.rounds.p50()),
        json_f64(r.write_latency.rounds.p90()),
        json_f64(r.write_latency.rounds.p99()),
        json_f64(r.write_latency.ticks.p99()),
        json_f64(r.write_latency.secs.p99()),
        json_f64(r.read_latency.rounds.p50()),
        json_f64(r.read_latency.rounds.p90()),
        json_f64(r.read_latency.rounds.p99()),
        json_f64(r.read_latency.ticks.p99()),
        json_f64(r.read_latency.secs.p99()),
        r.violations(),
        r.final_digest,
        c.offline_digest,
        r.final_digest == c.offline_digest,
    )
}

fn print_cell(c: &Cell) {
    println!(
        "{:<13} | {:<7} | {:>4} | {:>4}% | {:<8} | {:>7} | {:>7.3} | {:>9.1} | {:>9.1} | {:>4}",
        c.alg,
        c.process,
        json_f64(c.rate),
        c.read_pct,
        c.policy,
        c.rep.windows.len(),
        c.rep.amortized_rounds_per_op(),
        c.rep.write_latency.rounds.p99(),
        c.rep.read_latency.rounds.p99(),
        c.rep.violations(),
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_N);
    let ops_len: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_OPS);
    let json_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_PR10.json".into());
    let params = DmpcParams::new(n, 3 * n);

    println!("Service scaling: n = {n}, {ops_len} ops per cell, seed {SEED}\n");
    println!(
        "{:<13} | {:<7} | {:>4} | {:>5} | {:<8} | {:>7} | {:>7} | {:>9} | {:>9} | {:>4}",
        "algorithm",
        "process",
        "rate",
        "reads",
        "policy",
        "windows",
        "rnds/op",
        "w p99 rnd",
        "r p99 rnd",
        "viol"
    );

    let mut cells: Vec<Cell> = Vec::new();

    // Main sweep: steady arrivals, per-op vs windowed, both unweighted
    // services. The amortization claim is asserted per (alg, rate, mix)
    // group right where the pair completes.
    for alg in ["connectivity", "matching"] {
        let mix = match alg {
            "connectivity" => QueryMix::Connectivity,
            _ => QueryMix::Matching,
        };
        for &rate in RATES {
            for &pct in MIX_PCTS {
                let ops = streams::mixed_stream(n, ops_len, pct, TargetDist::Uniform, mix, SEED);
                let trace =
                    arrival_trace(&ops, ArrivalProcess::Steady { ops_per_tick: rate }, SEED);
                let mut pair: Vec<f64> = Vec::new();
                for (policy, cfg) in [("per_op", per_op_cfg()), ("windowed", windowed_cfg())] {
                    let (rep, off) = match alg {
                        "connectivity" => run_cell(
                            || UnweightedService::new(DmpcConnectivity::new(params)),
                            &trace,
                            &cfg,
                        ),
                        _ => run_cell(
                            || UnweightedService::new(DmpcMaximalMatching::new(params)),
                            &trace,
                            &cfg,
                        ),
                    };
                    pair.push(rep.amortized_rounds_per_op());
                    let cell = Cell {
                        alg,
                        process: "steady",
                        rate,
                        read_pct: pct,
                        policy,
                        backpressure: "none",
                        rep,
                        offline_digest: off,
                    };
                    print_cell(&cell);
                    cells.push(cell);
                }
                assert!(
                    pair[1] < pair[0],
                    "{alg} rate={rate} reads={pct}%: windowed ({}) must beat per-op ({}) \
                     on amortized rounds/op",
                    pair[1],
                    pair[0]
                );
            }
        }
    }

    // Flavor cells: bursty and diurnal arrivals through the windowed
    // policy — the load shapes the deadline rule exists for.
    for alg in ["connectivity", "matching"] {
        let mix = match alg {
            "connectivity" => QueryMix::Connectivity,
            _ => QueryMix::Matching,
        };
        let ops = streams::mixed_stream(n, ops_len, 50, TargetDist::Uniform, mix, SEED);
        for (pname, process, rate) in [
            (
                "bursty",
                ArrivalProcess::Bursty {
                    base: 0.25,
                    burst: 16.0,
                    period: 24,
                    burst_len: 3,
                },
                2.2,
            ),
            (
                "diurnal",
                ArrivalProcess::Diurnal {
                    low: 0.25,
                    high: 8.0,
                    period: 48,
                },
                4.1,
            ),
        ] {
            let trace = arrival_trace(&ops, process, SEED);
            let (rep, off) = match alg {
                "connectivity" => run_cell(
                    || UnweightedService::new(DmpcConnectivity::new(params)),
                    &trace,
                    &windowed_cfg(),
                ),
                _ => run_cell(
                    || UnweightedService::new(DmpcMaximalMatching::new(params)),
                    &trace,
                    &windowed_cfg(),
                ),
            };
            let cell = Cell {
                alg,
                process: pname,
                rate,
                read_pct: 50,
                policy: "windowed",
                backpressure: "none",
                rep,
                offline_digest: off,
            };
            print_cell(&cell);
            cells.push(cell);
        }
    }

    // MST rides the weighted adapter through one diurnal cell: derived
    // weights are a pure function of the edge, so the service plane needs
    // no weighted special-casing beyond the adapter.
    {
        let ops = streams::mixed_stream(n, ops_len, 50, TargetDist::Uniform, QueryMix::Mst, SEED);
        let trace = arrival_trace(
            &ops,
            ArrivalProcess::Diurnal {
                low: 0.25,
                high: 8.0,
                period: 48,
            },
            SEED,
        );
        let (rep, off) = run_cell(
            || WeightedEdgeService::new(DmpcMst::new(params, 0.1), 64, SEED),
            &trace,
            &windowed_cfg(),
        );
        let cell = Cell {
            alg: "mst",
            process: "diurnal",
            rate: 4.1,
            read_pct: 50,
            policy: "windowed",
            backpressure: "none",
            rep,
            offline_digest: off,
        };
        print_cell(&cell);
        cells.push(cell);
    }

    // Backpressure cells: a deliberately tiny buffer under an arrival spike.
    // Shed uses a read-only stream (dropping reads never invalidates the
    // write subsequence); Block loses nothing, so it takes the normal mix.
    {
        let reads_only = streams::mixed_stream(
            n,
            ops_len,
            100,
            TargetDist::Uniform,
            QueryMix::Connectivity,
            SEED,
        );
        let trace = arrival_trace(
            &reads_only,
            ArrivalProcess::Steady { ops_per_tick: 16.0 },
            SEED,
        );
        let cfg = ServiceConfig {
            window: WindowPolicy::windowed(8, 4),
            buffer_cap: 16,
            backpressure: BackpressurePolicy::Shed,
            ..ServiceConfig::default()
        };
        let (rep, off) = run_cell(
            || UnweightedService::new(DmpcConnectivity::new(params)),
            &trace,
            &cfg,
        );
        assert_eq!(
            rep.arrived,
            rep.admitted + rep.shed.len(),
            "shed accounting must balance"
        );
        assert!(!rep.shed.is_empty(), "the shed cell must actually shed");
        let cell = Cell {
            alg: "connectivity",
            process: "steady",
            rate: 16.0,
            read_pct: 100,
            policy: "windowed",
            backpressure: "shed",
            rep,
            offline_digest: off,
        };
        print_cell(&cell);
        cells.push(cell);

        let mixed = streams::mixed_stream(
            n,
            ops_len,
            50,
            TargetDist::Uniform,
            QueryMix::Connectivity,
            SEED,
        );
        let trace = arrival_trace(&mixed, ArrivalProcess::Steady { ops_per_tick: 16.0 }, SEED);
        let cfg = ServiceConfig {
            window: WindowPolicy::windowed(8, 4),
            buffer_cap: 16,
            backpressure: BackpressurePolicy::Block,
            ..ServiceConfig::default()
        };
        let (rep, off) = run_cell(
            || UnweightedService::new(DmpcConnectivity::new(params)),
            &trace,
            &cfg,
        );
        assert_eq!(rep.admitted, rep.arrived, "blocking must lose nothing");
        assert!(rep.shed.is_empty(), "blocking never sheds");
        assert!(rep.peak_parked > 0, "the block cell must actually park");
        let cell = Cell {
            alg: "connectivity",
            process: "steady",
            rate: 16.0,
            read_pct: 50,
            policy: "windowed",
            backpressure: "block",
            rep,
            offline_digest: off,
        };
        print_cell(&cell);
        cells.push(cell);
    }

    for c in &cells {
        assert_eq!(
            c.rep.violations(),
            0,
            "{} {} rate={} {} violated the model",
            c.alg,
            c.process,
            c.rate,
            c.policy
        );
    }

    let rows: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service_scaling\",\n",
            "  \"pr\": 10,\n",
            "  \"n\": {},\n",
            "  \"ops\": {},\n",
            "  \"seed\": {},\n",
            "  \"note\": \"clocked service front-end: ops arrive on seeded arrival processes, \
             queue in a bounded admission buffer, and coalesce into windows closing on size \
             or deadline, capped by the algorithm's admission budget. latency is end-to-end \
             enqueue->completion in simulator rounds / clock ticks / wall seconds \
             (nearest-rank percentiles). every cell replays its recorded windows offline \
             and asserts digest identity; windowed admission beats per-op on amortized \
             rounds/op at every swept rate. shed cell uses a read-only stream so dropped \
             ops never invalidate the write subsequence; block cell parks arrivals and \
             loses nothing.\",\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        n,
        ops_len,
        SEED,
        rows.join(",\n")
    );
    std::fs::write(&json_path, &json).expect("write service-scaling JSON");
    println!("\nwrote {json_path}");
}
