//! Query-plane scaling: amortized DMPC cost per query as a function of the
//! wave size `q`, plus mixed read/write workloads.
//!
//! **Why this exists.** The paper's Table 1 bounds *queries* as well as
//! updates, but until PR 5 the repo only exercised the update plane — a
//! read-heavy service (the ROADMAP's north star) would serialize on its
//! cheapest operation. Nowicki–Onak (arXiv:2002.07800) make batches the
//! unit of work for updates; this bin measures the same crossover for
//! reads: a pool of 256 queries is answered in waves of q in {1, 16, 256}
//! through the genuinely batched `answer_queries` machine programs
//! (connectivity's probe/rendezvous fan-out, matching's stats-local
//! answers), where q = 1 is the looped single-query baseline. The mixed
//! section interleaves reads and writes at the ratios Durfee et al.
//! (arXiv:1908.01956) motivate (95/5, 50/50, 5/95), with uniform and
//! clustered targets.
//!
//! The bin asserts the restored bounds on every run: at q = 256 the
//! batched amortized rounds/query stays <= 3 and strictly below the looped
//! baseline, answers are bit-identical across wave sizes, and no cell
//! records a model violation. CI smoke-runs it at tiny sizes and re-checks
//! those claims from the JSON; the canonical numbers live in
//! `BENCH_PR5.json` at the repo root.
//!
//! Usage: `query_scaling [n] [updates] [json-path]` (defaults: 256, 512,
//! `BENCH_PR5.json`).

use dmpc_bench::{
    connectivity_query_pool, matching_query_pool, run_queries_batched, standard_stream,
};
use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::queries::Op;
use dmpc_graph::streams::{self, QueryMix, TargetDist};
use dmpc_graph::{Query, QueryAnswer, Update};
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{BatchMetrics, QueryMetrics};

const CANON_N: usize = 256;
const CANON_UPDATES: usize = 512;
const SEED: u64 = 42;
/// Query-pool size (fixed; independent of `n` so the q = 256 wave always
/// exists, even in CI's tiny smoke runs).
const POOL: usize = 256;
/// Wave sizes swept; q = 1 is the looped baseline.
const SWEEP_Q: &[usize] = &[1, 16, 256];
/// Mixed-workload read percentages (reads per 100 ops).
const MIX_PCTS: &[u32] = &[95, 50, 5];

/// One wave-size cell of the sweep.
struct Cell {
    alg: &'static str,
    q: usize,
    qm: QueryMetrics,
}

/// One mixed-workload cell.
struct MixedCell {
    alg: &'static str,
    read_pct: u32,
    dist: &'static str,
    ops: usize,
    reads: usize,
    writes: usize,
    rounds: usize,
    total_words: usize,
    violations: usize,
}

fn make_alg(alg: &str, n: usize, ups: &[Update]) -> Box<dyn DynamicGraphAlgorithm> {
    let params = DmpcParams::new(n, 3 * n);
    let mut a: Box<dyn DynamicGraphAlgorithm> = match alg {
        "connectivity" => Box::new(DmpcConnectivity::new(params)),
        "matching" => Box::new(DmpcMaximalMatching::new(params)),
        other => panic!("unknown algorithm {other}"),
    };
    for chunk in ups.chunks(64) {
        let b = a.apply_batch(chunk);
        assert!(b.clean(), "update violations while building {alg}");
    }
    a
}

/// Replays a mixed stream, batching every maximal run of consecutive
/// same-kind ops (a write burst becomes one `apply_batch`, a read burst one
/// `answer_queries` wave) — the service-loop shape: drain whatever queued.
fn run_mixed(alg: &mut dyn DynamicGraphAlgorithm, ops: &[Op]) -> (BatchMetrics, QueryMetrics) {
    let mut bm = BatchMetrics::default();
    let mut qm = QueryMetrics::default();
    let mut i = 0;
    while i < ops.len() {
        let start = i;
        let read = ops[i].is_read();
        while i < ops.len() && ops[i].is_read() == read {
            i += 1;
        }
        if read {
            let wave: Vec<Query> = ops[start..i]
                .iter()
                .map(|o| match o {
                    Op::Read(q) => *q,
                    Op::Write(_) => unreachable!(),
                })
                .collect();
            let (answers, m) = alg.answer_queries(&wave);
            assert!(
                !answers.contains(&QueryAnswer::Unsupported),
                "mixed stream sent a query the algorithm does not support"
            );
            qm.merge(&m);
        } else {
            let batch: Vec<Update> = ops[start..i]
                .iter()
                .map(|o| match o {
                    Op::Write(u) => *u,
                    Op::Read(_) => unreachable!(),
                })
                .collect();
            bm.merge(&alg.apply_batch(&batch));
        }
    }
    (bm, qm)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".into()
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\"alg\": \"{}\", \"q\": {}, \"queries\": {}, \"rounds\": {},\n",
            "     \"amortized_rounds\": {}, \"amortized_words\": {}, ",
            "\"max_active_machines\": {},\n",
            "     \"machines_touched\": {}, \"total_words\": {}, \"violations\": {}}}"
        ),
        c.alg,
        c.q,
        c.qm.queries,
        c.qm.rounds,
        json_f64(c.qm.amortized_rounds()),
        json_f64(c.qm.amortized_words()),
        c.qm.max_active_machines,
        c.qm.machines_touched,
        c.qm.total_words,
        c.qm.violations,
    )
}

fn mixed_json(m: &MixedCell) -> String {
    format!(
        concat!(
            "    {{\"alg\": \"{}\", \"read_pct\": {}, \"dist\": \"{}\", \"ops\": {},\n",
            "     \"reads\": {}, \"writes\": {}, \"rounds\": {}, ",
            "\"total_words\": {}, \"violations\": {}}}"
        ),
        m.alg, m.read_pct, m.dist, m.ops, m.reads, m.writes, m.rounds, m.total_words, m.violations,
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_N);
    let updates: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_UPDATES);
    let json_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_PR5.json".into());
    let ups = standard_stream(n, updates, SEED);

    println!(
        "Query scaling: n = {n}, {} churn updates first, then {POOL} queries in waves of q\n",
        ups.len()
    );
    println!(
        "{:<13} | {:>5} | {:>12} | {:>12} | {:>10} | {:>11} | {:>5}",
        "algorithm", "q", "amort rnds/q", "amort wrds/q", "max active", "total words", "viol"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for alg in ["connectivity", "matching"] {
        let pool = match alg {
            "connectivity" => connectivity_query_pool(n, POOL, SEED),
            _ => matching_query_pool(n, POOL, SEED),
        };
        // Reads never mutate: one instance serves every wave size, and the
        // answers must come back bit-identical regardless of q.
        let mut a = make_alg(alg, n, &ups);
        let mut reference: Option<Vec<QueryAnswer>> = None;
        for &q in SWEEP_Q {
            let (answers, qm) = run_queries_batched(a.as_mut(), &pool, q);
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(
                    r, &answers,
                    "{alg}: answers differ between wave sizes (q={q})"
                ),
            }
            println!(
                "{alg:<13} | {q:>5} | {:>12.4} | {:>12.2} | {:>10} | {:>11} | {:>5}",
                qm.amortized_rounds(),
                qm.amortized_words(),
                qm.max_active_machines,
                qm.total_words,
                qm.violations,
            );
            cells.push(Cell { alg, q, qm });
        }
        let looped = &cells[cells.len() - SWEEP_Q.len()].qm;
        let batched = &cells[cells.len() - 1].qm;
        assert!(
            batched.amortized_rounds() <= 3.0,
            "{alg}: q=256 amortized rounds {} above 3",
            batched.amortized_rounds()
        );
        assert!(
            batched.amortized_rounds() < looped.amortized_rounds(),
            "{alg}: batched ({}) must strictly beat looped ({})",
            batched.amortized_rounds(),
            looped.amortized_rounds()
        );
    }
    for c in &cells {
        assert_eq!(c.qm.violations, 0, "{} q={} violated the model", c.alg, c.q);
    }

    println!("\nMixed read/write workloads ({updates} ops each):");
    println!(
        "{:<13} | {:>5} | {:>9} | {:>6} | {:>6} | {:>7} | {:>11} | {:>5}",
        "algorithm", "reads", "dist", "#reads", "#write", "rounds", "total words", "viol"
    );
    let mut mixed: Vec<MixedCell> = Vec::new();
    for alg in ["connectivity", "matching"] {
        let mix = match alg {
            "connectivity" => QueryMix::Connectivity,
            _ => QueryMix::Matching,
        };
        for &pct in MIX_PCTS {
            for (dist, dist_name) in [
                (TargetDist::Uniform, "uniform"),
                (TargetDist::Clustered { clusters: 8 }, "clustered"),
            ] {
                let ops = streams::mixed_stream(n, updates, pct, dist, mix, SEED);
                // Mixed streams are valid-by-construction from the EMPTY
                // graph (their writes track their own evolving state), so
                // the service loop starts from a fresh instance — replaying
                // them onto the churn-preloaded graph would collide with
                // live edges.
                let mut a = make_alg(alg, n, &[]);
                let (bm, qm) = run_mixed(a.as_mut(), &ops);
                let cell = MixedCell {
                    alg,
                    read_pct: pct,
                    dist: dist_name,
                    ops: ops.len(),
                    reads: qm.queries,
                    writes: bm.updates,
                    rounds: bm.rounds + qm.rounds,
                    total_words: bm.total_words + qm.total_words,
                    violations: bm.violations + qm.violations,
                };
                println!(
                    "{alg:<13} | {pct:>4}% | {dist_name:>9} | {:>6} | {:>6} | {:>7} | {:>11} | {:>5}",
                    cell.reads, cell.writes, cell.rounds, cell.total_words, cell.violations,
                );
                assert_eq!(cell.violations, 0, "{alg} {pct}% {dist_name} violated");
                mixed.push(cell);
            }
        }
    }

    let cell_rows: Vec<String> = cells.iter().map(cell_json).collect();
    let mixed_rows: Vec<String> = mixed.iter().map(mixed_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"query_scaling\",\n",
            "  \"pr\": 5,\n",
            "  \"n\": {},\n",
            "  \"updates\": {},\n",
            "  \"queries\": {},\n",
            "  \"seed\": {},\n",
            "  \"note\": \"pool of {} uniform queries answered in waves of q after the churn \
             stream; q=1 is the looped baseline. connectivity resolves Connected/ComponentOf \
             waves in 2 rounds and PathMax in 5 via per-query rendezvous; matching answers \
             IsMatched at the stats machines and MatchingSize from the coordinator counter \
             in 1 round. mixed = interleaved read/write service loop, consecutive same-kind \
             ops drained as one batch/wave.\",\n",
            "  \"cells\": [\n{}\n  ],\n",
            "  \"mixed\": [\n{}\n  ]\n",
            "}}\n"
        ),
        n,
        ups.len(),
        POOL,
        SEED,
        POOL,
        cell_rows.join(",\n"),
        mixed_rows.join(",\n")
    );
    std::fs::write(&json_path, &json).expect("write query-scaling JSON");
    println!("\nwrote {json_path}");
}
