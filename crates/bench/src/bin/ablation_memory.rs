//! Experiment E11 (the paper's Section 3 remark): "the communication
//! complexity is actually proportional to the number of machines used by
//! the system". Holding the machine count fixed while growing per-machine
//! memory leaves communication unchanged; communication moves with the
//! machine count (compare the scaling binary, where machines ~ sqrt(N)
//! drive words ~ sqrt(N)).

use dmpc_bench::{run_unweighted, standard_stream};
use dmpc_core::DmpcParams;
use dmpc_matching::DmpcMaximalMatching;

fn main() {
    let n = 256;
    println!(
        "memory ablation, maximal matching, n = {n}, m_max = {}:",
        3 * n
    );
    println!(
        "{:>12} | {:>10} | {:>12} | {:>14}",
        "S multiplier", "machines", "max words", "mean words"
    );
    for mult in [8usize, 16, 32, 64, 128] {
        let params = DmpcParams::new(n, 3 * n).with_multiplier(mult);
        let mut alg = DmpcMaximalMatching::new(params);
        let machines = alg.layout().total_machines();
        let agg = run_unweighted(&mut alg, &standard_stream(n, 150, 11));
        println!(
            "{:>12} | {:>10} | {:>12} | {:>14.1}",
            mult, machines, agg.max_words_per_round, agg.mean_words_per_round
        );
    }
    println!("\nCommunication is flat in S at a fixed machine count: it is the");
    println!("machine count (here fixed by N) that drives communication, exactly");
    println!("the paper's Section 3 remark. The scaling binary shows the moving");
    println!("side: machines ~ sqrt(N) => words ~ sqrt(N).");
}
