//! Experiment E9: dynamic maintenance vs static recomputation after every
//! update — who wins and by how much (rounds and communication).

use dmpc_bench::{run_unweighted, standard_stream, tree_stream};
use dmpc_connectivity::{DmpcConnectivity, StaticCc};
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::streams::{replay, Update};
use dmpc_matching::static_mm::StaticMaximalMatching;
use dmpc_matching::DmpcMaximalMatching;

fn main() {
    println!("dynamic vs static recompute (per update, worst case)\n");
    println!(
        "{:>6} | {:>14} | {:>14} | {:>16} | {:>16}",
        "n", "dyn rounds", "static rounds", "dyn words/upd", "static words/upd"
    );
    println!("--- connectivity ---");
    for n in [64usize, 128, 256] {
        let params = DmpcParams::new(n, 3 * n);
        let ups = tree_stream(n, 60, 5);
        let mut dynamic = DmpcConnectivity::new(params);
        let agg = run_unweighted(&mut dynamic, &ups);
        let g = replay(n, &ups);
        let edges: Vec<_> = g.edges().collect();
        let st = StaticCc::new(n, params.storage_machines());
        let (_, sm) = st.recompute(&edges);
        println!(
            "{:>6} | {:>14} | {:>14} | {:>16} | {:>16}",
            n, agg.max_rounds, sm.rounds, agg.max_words_per_round, sm.total_words
        );
    }
    println!("--- maximal matching ---");
    for n in [64usize, 128, 256] {
        let params = DmpcParams::new(n, 3 * n);
        let ups = standard_stream(n, 60, 5);
        let mut dynamic = DmpcMaximalMatching::new(params);
        let mut agg = dmpc_mpc::AggregateMetrics::default();
        let mut g = dmpc_graph::DynamicGraph::new(n);
        for &u in &ups {
            match u {
                Update::Insert(e) => {
                    g.insert(e).unwrap();
                    agg.absorb(&dynamic.insert(e));
                }
                Update::Delete(e) => {
                    g.delete(e).unwrap();
                    agg.absorb(&dynamic.delete(e));
                }
            }
        }
        let edges: Vec<_> = g.edges().collect();
        let st = StaticMaximalMatching::new(n, params.storage_machines(), 7);
        let (_, sm) = st.recompute(&edges);
        println!(
            "{:>6} | {:>14} | {:>14} | {:>16} | {:>16}",
            n, agg.max_rounds, sm.rounds, agg.max_words_per_round, sm.total_words
        );
    }
    println!("\nThe dynamic algorithms hold rounds constant and communication at");
    println!("O(sqrt N); static recomputation pays rounds that grow with n and");
    println!("communication proportional to the whole graph — the paper's motivation.");
}
