//! Experiment E10: the communication-entropy metric proposed in the paper's
//! Section 8 — coordinator-based algorithms concentrate communication (low
//! entropy), broadcast-based ones spread it (high entropy).

use dmpc_bench::{standard_stream, tree_stream};
use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::streams::Update;
use dmpc_matching::DmpcMaximalMatching;

fn mean_entropy<A: DynamicGraphAlgorithm>(alg: &mut A, ups: &[Update]) -> f64 {
    let mut total = 0.0;
    let mut k = 0usize;
    for &u in ups {
        let m = alg.apply(u);
        total += m.flow_entropy_bits();
        k += 1;
    }
    total / k as f64
}

fn main() {
    let n = 128;
    let params = DmpcParams::new(n, 3 * n);
    let mut mm = DmpcMaximalMatching::new(params);
    let e_mm = mean_entropy(&mut mm, &standard_stream(n, 150, 9));
    let mut cc = DmpcConnectivity::new(params);
    let e_cc = mean_entropy(&mut cc, &tree_stream(n, 150, 9));
    println!("mean per-update communication entropy (bits), n = {n}:");
    println!("  maximal matching (coordinator-centric): {e_mm:.3}");
    println!("  connectivity (broadcast to all owners): {e_cc:.3}");
    println!();
    println!("Section 8 predicts the coordinator algorithm concentrates its");
    println!("communication on few machine pairs (lower entropy) while the");
    println!("broadcast algorithm spreads it nearly uniformly (higher entropy).");
    assert!(e_cc > e_mm, "expected broadcast entropy to dominate");
}
