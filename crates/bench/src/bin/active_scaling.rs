//! Active-machine scaling: does the structural-update footprint track the
//! affected components' owner sets, or the cluster size P?
//!
//! **Why this exists.** The paper's Table 1 bounds connectivity updates by
//! O(sqrt N) *active* machines. The pre-PR4 machine program broadcast every
//! structural op to all P machines, so `max_active_machines` was Theta(P) on
//! every link/cut — the one complexity column the repo could not reproduce.
//! Component-owner multicast (PR 4) addresses structural ops, replacement
//! searches and path-max queries only to the machines owning vertices of the
//! affected components. This bin sweeps the machine count P in {4, 16, 64}
//! at fixed n over a cluster-local churn stream (components confined to
//! vertex ranges, so owner sets stay small as P grows) and compares the two
//! routings: under broadcast the active footprint follows P; under multicast
//! it follows the owner sets and stays flat.
//!
//! The machine capacity is scaled as Theta(N / P) when P is forced below
//! the model's O(sqrt N) default — fewer machines must hold more state,
//! exactly as the MPC model provisions them.
//!
//! Every run *asserts* the restored bound: each update touches at most
//! `|owners(comp(u)) ∪ owners(comp(v))|` machines (the pre-update ground
//! truth), never P. CI smoke-runs this bin at tiny sizes; the canonical
//! numbers live in `BENCH_PR4.json` at the repo root.
//!
//! Usage: `active_scaling [n] [updates] [json-path]` (defaults: 256, 512,
//! `BENCH_PR4.json`).

use dmpc_connectivity::{DmpcConnectivity, Routing};
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::streams::{self, Update};
use dmpc_mpc::{AggregateMetrics, ExecOptions};

const CANON_N: usize = 256;
const CANON_UPDATES: usize = 512;
const SEED: u64 = 42;
/// Machine counts swept at fixed n.
const SWEEP_P: &[usize] = &[4, 16, 64];
/// Clusters in the workload: components stay inside n/CLUSTERS-vertex
/// ranges, so owner sets stay small regardless of P.
const CLUSTERS: usize = 8;

/// One routing's measurements at one machine count.
struct Cell {
    p: usize,
    routing: &'static str,
    agg: AggregateMetrics,
    total_words: usize,
    /// Structural updates only: worst/mean distinct machines touched.
    structural: usize,
    max_touched_structural: usize,
    mean_touched_structural: f64,
    /// Worst pre-update owner footprint seen on a structural update.
    max_owner_union: usize,
}

fn run_cell(n: usize, p: usize, routing: Routing, ups: &[Update]) -> Cell {
    // Forcing P below the model's O(sqrt N) machine count means each
    // machine holds Theta(N / P) words; forcing it above means the *legacy
    // broadcast* cell sends 16-word Applies to P-1 machines in one round.
    // Provision capacity for both, so the sweep isolates the active-machine
    // metric instead of manufacturing capacity violations.
    let base = DmpcParams::new(n, 3 * n);
    let mem_mult = 32 * base.storage_machines().div_ceil(p).max(1);
    let fanout_mult = (16 * p).div_ceil(base.sqrt_n()) + 1;
    let params = base.with_multiplier(mem_mult.max(fanout_mult));
    let mut alg = DmpcConnectivity::with_cluster(params, ExecOptions::default(), routing, p);
    let p_actual = alg.driver().n_machines();
    let mut cell = Cell {
        p: p_actual,
        routing: match routing {
            Routing::Multicast => "multicast",
            Routing::Broadcast => "broadcast",
        },
        agg: AggregateMetrics::default(),
        total_words: 0,
        structural: 0,
        max_touched_structural: 0,
        mean_touched_structural: 0.0,
        max_owner_union: 0,
    };
    for &u in ups {
        let structural = alg.driver().is_structural(u);
        let union = alg.driver().owner_footprint(u.edge());
        let m = match u {
            Update::Insert(e) => alg.insert(e),
            Update::Delete(e) => alg.delete(e),
        };
        assert!(m.clean(), "violations at P={p_actual}: {:?}", m.violations);
        if routing == Routing::Multicast {
            // The restored Table-1 bound: the whole update footprint stays
            // within the affected components' owner machines, not P.
            assert!(
                m.machines_touched <= union.len(),
                "P={p_actual} {u:?}: touched {} machines, owner footprint {}",
                m.machines_touched,
                union.len()
            );
        }
        if structural {
            let k = cell.structural as f64;
            cell.structural += 1;
            cell.max_touched_structural = cell.max_touched_structural.max(m.machines_touched);
            cell.mean_touched_structural =
                (cell.mean_touched_structural * k + m.machines_touched as f64) / (k + 1.0);
            cell.max_owner_union = cell.max_owner_union.max(union.len());
        }
        cell.total_words += m.total_words;
        cell.agg.absorb(&m);
    }
    alg.driver().audit().expect("structural audit");
    alg.driver().audit_directory().expect("directory audit");
    cell
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\"p\": {}, \"routing\": \"{}\",\n",
            "     \"max_active_machines\": {}, \"mean_active_machines\": {},\n",
            "     \"max_machines_touched\": {}, \"mean_machines_touched\": {},\n",
            "     \"structural_updates\": {}, \"max_touched_structural\": {}, ",
            "\"mean_touched_structural\": {},\n",
            "     \"max_owner_union\": {}, \"total_words\": {}, ",
            "\"max_rounds\": {}, \"violations\": {}}}"
        ),
        c.p,
        c.routing,
        c.agg.max_active_machines,
        json_f64(c.agg.mean_active_machines),
        c.agg.max_machines_touched,
        json_f64(c.agg.mean_machines_touched),
        c.structural,
        c.max_touched_structural,
        json_f64(c.mean_touched_structural),
        c.max_owner_union,
        c.total_words,
        c.agg.max_rounds,
        c.agg.violations,
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_N);
    let updates: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_UPDATES);
    let json_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_PR4.json".into());
    let ups = streams::clustered_churn_stream(n, CLUSTERS, n / (2 * CLUSTERS), updates, 0.5, SEED);

    println!(
        "Active-machine scaling: n = {n}, {} cluster-local churn updates, {CLUSTERS} clusters\n",
        ups.len()
    );
    println!(
        "{:>4} | {:>9} | {:>10} | {:>11} | {:>14} | {:>15} | {:>11} | {:>9}",
        "P",
        "routing",
        "max active",
        "mean active",
        "struct worst",
        "struct mean tch",
        "total words",
        "max union"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &p in SWEEP_P {
        for routing in [Routing::Broadcast, Routing::Multicast] {
            let c = run_cell(n, p, routing, &ups);
            println!(
                "{:>4} | {:>9} | {:>10} | {:>11.2} | {:>14} | {:>15.2} | {:>11} | {:>9}",
                c.p,
                c.routing,
                c.agg.max_active_machines,
                c.agg.mean_active_machines,
                c.max_touched_structural,
                c.mean_touched_structural,
                c.total_words,
                c.max_owner_union,
            );
            cells.push(c);
        }
        // Broadcast's structural footprint tracks P; multicast's must not.
        let bc = &cells[cells.len() - 2];
        let mc = &cells[cells.len() - 1];
        assert!(mc.max_touched_structural <= mc.max_owner_union + 1);
        if bc.structural > 0 && bc.p >= 4 {
            assert!(
                mc.mean_touched_structural <= bc.mean_touched_structural,
                "multicast must not touch more machines than broadcast at P={}",
                bc.p
            );
        }
    }

    let rows: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"active_scaling\",\n",
            "  \"pr\": 4,\n",
            "  \"n\": {},\n",
            "  \"updates\": {},\n",
            "  \"clusters\": {},\n",
            "  \"seed\": {},\n",
            "  \"note\": \"cluster-local churn; components confined to n/clusters-vertex \
             ranges so owner sets stay small as P grows. broadcast = legacy all-machine \
             fan-out, multicast = component-owner directory routing (PR 4). \
             machines_touched = distinct machines active across one update.\",\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        n,
        ups.len(),
        CLUSTERS,
        SEED,
        rows.join(",\n")
    );
    std::fs::write(&json_path, &json).expect("write active-scaling JSON");
    println!("\nwrote {json_path}");
}
