//! Wall-clock throughput of the simulator itself: updates/sec and
//! rounds/sec for the connectivity and maximal-matching churn streams.
//!
//! **Why this exists.** The paper's cost model (Italiano–Lattanzi–Mirrokni–
//! Parotsidis, SPAA 2019, arXiv:1905.09175) charges rounds, machines and
//! communication — it never charges the simulator's own constant factors.
//! But batch-dynamic throughput lives or dies on those constants (Durfee
//! et al., arXiv:1908.01956), so this bin times the executor hot path in
//! real seconds: the same churn stream, serial and parallel, looped (k=1)
//! and batched (k=64), with the peak resident-memory proxy sampled between
//! batches. The result is the repo's wall-clock perf trajectory; PR 3 is
//! its first point (`BENCH_PR3.json`).
//!
//! The baseline table below was captured on the same host *before the
//! executor overhaul landed*: the working tree held commit 8284f88's
//! executor (per-round `HashMap` routing, scoped thread spawn every round)
//! plus only the additions this bin needs to compile — `ExecOptions` /
//! `with_exec` plumbing, `resident_words`, and the bin itself — with
//! `Backend::WorkerPool` still aliased to the scope-spawn path. Checking
//! out 8284f88 alone therefore does **not** reproduce the baseline (the
//! bin does not exist there); re-measuring it requires reverting the
//! executor overhaul while keeping the plumbing. The JSON reports
//! baseline, current, and the speedup side by side for the canonical
//! configuration (n = 256, 1024 churn updates, 4 worker threads).
//!
//! Usage: `throughput [n] [updates] [json-path]` (defaults: 256, 1024,
//! `BENCH_PR3.json`; CI smokes it with tiny sizes and checks the JSON
//! parses).

use dmpc_bench::{canonical_params, canonical_workload, time_stream_batched, TimedRun};
use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::DynamicGraphAlgorithm;
use dmpc_graph::Update;
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{Backend, ExecOptions};

/// Fixed worker count: keeps parallel numbers comparable across hosts.
const THREADS: usize = 4;
/// The canonical configuration the baseline was captured at.
const CANON_N: usize = 256;
const CANON_UPDATES: usize = 1024;
/// Host fingerprint of the baseline capture (a 1-core CI container).
/// Baseline comparison is suppressed on hosts with a different core count —
/// a cross-hardware ratio would say nothing about the executor.
const BASELINE_HOST_CORES: usize = 1;
const SEED: u64 = 42;
/// Repetitions per configuration; the fastest run is reported (standard
/// practice for wall-clock microbenchmarks — the minimum is the least
/// noise-contaminated estimate of the true cost).
const REPS: usize = 3;

/// Pre-overhaul executor numbers (commit 8284f88's hot path; see the
/// module docs for the exact capture setup) at the canonical config:
/// `(alg, backend, k, updates_per_sec, rounds_per_sec, peak_resident_words)`.
/// `parallel` there means the old scope-spawn backend with 4 threads, and
/// flow tracking was on in every baseline config (the only choice the
/// pre-overhaul drivers offered).
const BASELINE: &[(&str, &str, usize, f64, f64, usize)] = &[
    ("connectivity", "serial", 1, 37522.6, 197970.8, 6672),
    ("connectivity", "serial", 64, 38247.1, 67007.0, 6636),
    ("connectivity", "parallel", 1, 10696.3, 56433.9, 6672),
    ("connectivity", "parallel", 64, 11833.3, 20731.3, 6636),
    ("matching", "serial", 1, 142476.5, 969229.7, 6284),
    ("matching", "serial", 64, 154462.3, 295952.2, 6320),
    ("matching", "parallel", 1, 7503.6, 51044.8, 6284),
    ("matching", "parallel", 64, 15280.8, 29278.3, 6320),
];

struct Measured {
    alg: &'static str,
    backend: &'static str,
    k: usize,
    run: TimedRun,
}

fn exec_for(backend: &str) -> ExecOptions {
    match backend {
        "serial" => ExecOptions::default(),
        // Aggregates-only profile (`record_per_round` off) — did not exist
        // pre-PR3; its baseline comparator is the recorded serial run.
        "serial-lean" => ExecOptions::lean(),
        "parallel" => ExecOptions::parallel(Backend::WorkerPool, THREADS),
        other => panic!("unknown backend {other}"),
    }
}

fn make_alg(alg: &str, n: usize, exec: ExecOptions) -> Box<dyn DynamicGraphAlgorithm> {
    let params = canonical_params(n);
    match alg {
        "connectivity" => Box::new(DmpcConnectivity::with_exec(params, exec)),
        "matching" => Box::new(DmpcMaximalMatching::with_exec(params, exec)),
        other => panic!("unknown algorithm {other}"),
    }
}

fn baseline_for(alg: &str, backend: &str, k: usize) -> Option<(f64, f64, usize)> {
    // Lean mode has no pre-PR3 equivalent; it is compared against the
    // recorded serial baseline (the fastest pre-PR3 way to run the stream).
    let backend = if backend == "serial-lean" {
        "serial"
    } else {
        backend
    };
    BASELINE
        .iter()
        .find(|b| b.0 == alg && b.1 == backend && b.2 == k)
        .map(|b| (b.3, b.4, b.5))
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

fn config_json(m: &Measured, canonical: bool) -> String {
    let cur = format!(
        concat!(
            "{{\"updates_per_sec\": {}, \"rounds_per_sec\": {}, \"secs\": {}, ",
            "\"rounds\": {}, \"total_words\": {}, \"peak_resident_words\": {}, ",
            "\"violations\": {}}}"
        ),
        json_f64(m.run.updates_per_sec()),
        json_f64(m.run.rounds_per_sec()),
        json_f64(m.run.secs),
        m.run.batch.rounds,
        m.run.batch.total_words,
        m.run.peak_resident_words,
        m.run.batch.violations,
    );
    let (base, speedup) = match baseline_for(m.alg, m.backend, m.k) {
        Some((ups, rps, words)) if canonical => (
            format!(
                concat!(
                    "{{\"updates_per_sec\": {}, \"rounds_per_sec\": {}, ",
                    "\"peak_resident_words\": {}}}"
                ),
                json_f64(ups),
                json_f64(rps),
                words
            ),
            if ups > 0.0 {
                json_f64(m.run.updates_per_sec() / ups)
            } else {
                "null".into()
            },
        ),
        _ => ("null".into(), "null".into()),
    };
    format!(
        concat!(
            "    {{\"alg\": \"{}\", \"backend\": \"{}\", \"k\": {},\n",
            "     \"current\": {},\n",
            "     \"baseline\": {},\n",
            "     \"speedup_updates_per_sec\": {}}}"
        ),
        m.alg, m.backend, m.k, cur, base, speedup
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_N);
    let updates: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_UPDATES);
    let json_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_PR3.json".into());
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let canonical = n == CANON_N && updates == CANON_UPDATES && host_cores == BASELINE_HOST_CORES;
    if n == CANON_N && updates == CANON_UPDATES && host_cores != BASELINE_HOST_CORES {
        println!(
            "note: host has {host_cores} cores but the baseline was captured on \
             {BASELINE_HOST_CORES}; suppressing baseline comparison (numbers would \
             reflect hardware, not the executor).\n"
        );
    }
    let (_, ups): (_, Vec<Update>) = canonical_workload(n, updates, SEED);

    println!(
        "Executor throughput: n = {n}, {} churn updates, {} worker threads\n",
        ups.len(),
        THREADS
    );
    println!(
        "{:<13} | {:>8} | {:>4} | {:>11} | {:>11} | {:>9} | {:>10} | {:>8}",
        "algorithm", "backend", "k", "updates/s", "rounds/s", "secs", "peak words", "speedup"
    );

    let mut measured: Vec<Measured> = Vec::new();
    for alg in ["connectivity", "matching"] {
        for backend in ["serial", "serial-lean", "parallel"] {
            for k in [1usize, 64] {
                let run = (0..REPS)
                    .map(|_| {
                        let mut a = make_alg(alg, n, exec_for(backend));
                        time_stream_batched(a.as_mut(), &ups, k)
                    })
                    .min_by(|a, b| a.secs.total_cmp(&b.secs))
                    .expect("at least one rep");
                let speedup = baseline_for(alg, backend, k)
                    .filter(|_| canonical)
                    .map(|(ups_base, _, _)| format!("{:>7.2}x", run.updates_per_sec() / ups_base))
                    .unwrap_or_else(|| "      --".into());
                println!(
                    "{alg:<13} | {backend:>8} | {k:>4} | {:>11.1} | {:>11.1} | {:>9.3} | {:>10} | {speedup}",
                    run.updates_per_sec(),
                    run.rounds_per_sec(),
                    run.secs,
                    run.peak_resident_words,
                );
                measured.push(Measured {
                    alg,
                    backend,
                    k,
                    run,
                });
            }
        }
    }

    let configs: Vec<String> = measured.iter().map(|m| config_json(m, canonical)).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"throughput\",\n",
            "  \"pr\": 3,\n",
            "  \"baseline_rev\": \"8284f88\",\n",
            "  \"baseline_note\": \"measured with this bin running against the pre-overhaul \
             executor (8284f88 hot path + the ExecOptions/driver plumbing this bin needs; \
             parallel = scope-spawn backend, flow tracking on) — see the bin's module docs\",\n",
            "  \"n\": {},\n",
            "  \"updates\": {},\n",
            "  \"seed\": {},\n",
            "  \"threads\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"baseline_host_cores\": {},\n",
            "  \"canonical\": {},\n",
            "  \"configs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        n,
        updates,
        SEED,
        THREADS,
        host_cores,
        BASELINE_HOST_CORES,
        canonical,
        configs.join(",\n")
    );
    std::fs::write(&json_path, &json).expect("write throughput JSON");
    println!("\nwrote {json_path}");
}
