//! Million-vertex scaling trajectory + the SoA-vs-map layout comparison
//! (PR 7): writes `BENCH_PR7.json`.
//!
//! **What it measures.** Two things the compact machine-state refactor is
//! accountable for:
//!
//! 1. **Canonical layout comparison** (n = 256, 1024 churn updates, seed
//!    42 — the exact BENCH_PR3.json configuration): the arena-backed SoA
//!    layout against the legacy map layout, same serial executor, same
//!    stream, reported as an updates/sec speedup with the state digests
//!    cross-checked bit-for-bit. Like BENCH_PR3.json, the comparison is
//!    core-count fingerprinted: `canonical` is true only on a host
//!    matching the capture fingerprint, so recorded speedups always refer
//!    to the capture host.
//! 2. **Large-n trajectory**: n = 2^10 … 2^20 with `P = Θ(N/S)` machines
//!    (2048 at n = 2^20), over the clustered churn workload (256-vertex
//!    component grain — see `trajectory_workload` for why owner-set
//!    locality is what makes a one-host simulation of the model feasible
//!    at millions of vertices). Each cell reports wall-clock updates/sec,
//!    the peak resident-words proxy (which must grow ~linearly in the
//!    input), and the model-violation count (which must be zero).
//!
//! Usage: `large_scale [json-path] [exp...]` — defaults: `BENCH_PR7.json`,
//! exps `10 12 14 16 18 20` (`n = 2^exp`). Connectivity runs at every n;
//! matching joins at n >= 2^14 (its coordinator protocol dominates below).
//! CI smokes the single n = 2^14 cell and gates on the JSON via
//! `ci/check_perf_floor.py`.

use dmpc_bench::{canonical_workload, time_stream_batched, trajectory_workload, TimedRun};
use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm};
use dmpc_graph::Update;
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{ExecOptions, Layout};

/// The canonical configuration (matches BENCH_PR3.json).
const CANON_N: usize = 256;
const CANON_UPDATES: usize = 1024;
/// Host fingerprint of the floor capture (a 1-core CI container).
const BASELINE_HOST_CORES: usize = 1;
const SEED: u64 = 42;
/// Repetitions for the small canonical cells; the fastest run is kept.
const CANON_REPS: usize = 3;
/// Batched-replay chunk for the trajectory cells (the PR 5 batch plane).
const K: usize = 64;
/// Matching joins the trajectory here.
const MATCHING_MIN_EXP: u32 = 14;

/// Churn tail per trajectory cell: enough steps for a stable rate at small
/// n, capped so the 2^20 cell (whose 2n-insert build-up already dominates)
/// stays minutes, not hours.
fn churn_steps(n: usize) -> usize {
    (n / 4).clamp(1024, 1 << 18)
}

/// Pre-PR map-layout capture at the canonical configuration, serial
/// executor, on the fingerprinted 1-core host: `(alg, k,
/// updates_per_sec, peak_resident_words)`. Captured by running the
/// `throughput` bin on the pre-refactor working tree (the commit this PR
/// stacks on), whose machines stored per-vertex `BTreeMap` state — the
/// layout preserved in-tree as `Layout::Map`, which the shared-sweep
/// restructuring has since sped up too; the trajectory claim is against
/// the *shipped* pre-PR numbers below.
const PRE_PR_BASELINE: &[(&str, usize, f64, usize)] = &[
    ("connectivity", 1, 39450.8, 6706),
    ("connectivity", 64, 41513.7, 6670),
    ("matching", 1, 175506.4, 6284),
    ("matching", 64, 200749.2, 6320),
];

/// The tentpole's canonical-cell floor: SoA connectivity must beat the
/// pre-PR layout by this factor on the capture host.
const MIN_CONN_SPEEDUP: f64 = 1.5;

fn pre_pr_baseline(alg: &str, k: usize) -> Option<(f64, usize)> {
    PRE_PR_BASELINE
        .iter()
        .find(|b| b.0 == alg && b.1 == k)
        .map(|b| (b.2, b.3))
}

fn make_canon(alg: &str, params: DmpcParams, layout: Layout) -> Box<dyn CanonAlg> {
    match alg {
        "connectivity" => Box::new(DmpcConnectivity::with_layout(
            params,
            ExecOptions::default(),
            layout,
        )),
        "matching" => Box::new(DmpcMaximalMatching::with_state_layout(
            params,
            ExecOptions::default(),
            layout,
        )),
        other => panic!("unknown algorithm {other}"),
    }
}

/// The canonical comparison needs both the update plane and the digest.
trait CanonAlg: DynamicGraphAlgorithm {
    fn digest(&self) -> u64;
}
impl CanonAlg for DmpcConnectivity {
    fn digest(&self) -> u64 {
        ElasticAlgorithm::state_digest(self)
    }
}
impl CanonAlg for DmpcMaximalMatching {
    fn digest(&self) -> u64 {
        ElasticAlgorithm::state_digest(self)
    }
}

/// Fastest of [`CANON_REPS`] timed replays plus the final-state digest
/// (identical across reps: the stream is fixed).
fn canon_run(
    alg: &str,
    params: DmpcParams,
    layout: Layout,
    ups: &[Update],
    k: usize,
) -> (TimedRun, u64) {
    let mut best: Option<TimedRun> = None;
    let mut digest = 0;
    for _ in 0..CANON_REPS {
        let mut a = make_canon(alg, params, layout);
        let run = time_stream_batched(a.as_mut(), ups, k);
        digest = a.digest();
        if best.as_ref().is_none_or(|b| run.secs < b.secs) {
            best = Some(run);
        }
    }
    (best.expect("at least one rep"), digest)
}

struct CanonConfig {
    alg: &'static str,
    k: usize,
    map: TimedRun,
    soa: TimedRun,
    digests_match: bool,
}

struct Cell {
    alg: &'static str,
    n: usize,
    p: usize,
    stream_len: usize,
    run: TimedRun,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

fn timed_json(r: &TimedRun) -> String {
    format!(
        concat!(
            "{{\"updates_per_sec\": {}, \"secs\": {}, \"rounds\": {}, ",
            "\"total_words\": {}, \"peak_resident_words\": {}, \"violations\": {}}}"
        ),
        json_f64(r.updates_per_sec()),
        json_f64(r.secs),
        r.batch.rounds,
        r.batch.total_words,
        r.peak_resident_words,
        r.batch.violations,
    )
}

fn main() {
    let json_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR7.json".into());
    let exps: Vec<u32> = {
        let given: Vec<u32> = std::env::args()
            .skip(2)
            .map(|s| s.parse().expect("exp arguments must be integers"))
            .collect();
        if given.is_empty() {
            vec![10, 12, 14, 16, 18, 20]
        } else {
            given
        }
    };
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let canonical = host_cores == BASELINE_HOST_CORES;

    // ----- canonical layout comparison ----------------------------------
    let (params, ups) = canonical_workload(CANON_N, CANON_UPDATES, SEED);
    println!(
        "Canonical layout comparison: n = {CANON_N}, {} churn updates, serial executor\n",
        ups.len()
    );
    println!(
        "{:<13} | {:>4} | {:>13} | {:>13} | {:>9} | {:>9} | {:>7}",
        "algorithm", "k", "map updates/s", "soa updates/s", "vs map", "vs prePR", "digests"
    );
    let mut canon: Vec<CanonConfig> = Vec::new();
    for alg in ["connectivity", "matching"] {
        for k in [1usize, 64] {
            let (map, dm) = canon_run(alg, params, Layout::Map, &ups, k);
            let (soa, ds) = canon_run(alg, params, Layout::Soa, &ups, k);
            let digests_match = dm == ds;
            assert!(
                digests_match,
                "{alg}: layout digests diverged on the canonical stream"
            );
            assert_eq!(
                map.batch.violations, 0,
                "{alg}: map layout violated the model"
            );
            assert_eq!(
                soa.batch.violations, 0,
                "{alg}: SoA layout violated the model"
            );
            let vs_pre_pr = pre_pr_baseline(alg, k)
                .map(|(base, _)| soa.updates_per_sec() / base)
                .filter(|_| canonical);
            if alg == "connectivity" && canonical {
                let s = vs_pre_pr.expect("baseline covers connectivity");
                assert!(
                    s >= MIN_CONN_SPEEDUP,
                    "connectivity k={k}: {s:.2}x vs the pre-PR layout, floor {MIN_CONN_SPEEDUP}x"
                );
            }
            println!(
                "{alg:<13} | {k:>4} | {:>13.1} | {:>13.1} | {:>8.2}x | {:>9} | {:>7}",
                map.updates_per_sec(),
                soa.updates_per_sec(),
                soa.updates_per_sec() / map.updates_per_sec(),
                vs_pre_pr
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "--".into()),
                if digests_match { "match" } else { "DIFFER" },
            );
            canon.push(CanonConfig {
                alg,
                k,
                map,
                soa,
                digests_match,
            });
        }
    }
    if !canonical {
        println!(
            "\nnote: host has {host_cores} cores, capture fingerprint is \
             {BASELINE_HOST_CORES}; pre-PR speedups suppressed (they would \
             reflect hardware, not the layout)."
        );
    }

    // ----- large-n trajectory -------------------------------------------
    println!("\nLarge-n trajectory: clustered churn, lean serial executor, k = {K}\n");
    println!(
        "{:<13} | {:>8} | {:>5} | {:>8} | {:>11} | {:>9} | {:>12} | {:>5}",
        "algorithm", "n", "P", "stream", "updates/s", "secs", "peak words", "viol"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for &e in &exps {
        let n = 1usize << e;
        let (params, ups) = trajectory_workload(n, churn_steps(n), SEED);
        let mut algs: Vec<(&'static str, Box<dyn DynamicGraphAlgorithm>)> = vec![(
            "connectivity",
            Box::new(DmpcConnectivity::with_exec(params, ExecOptions::lean())),
        )];
        if e >= MATCHING_MIN_EXP {
            algs.push((
                "matching",
                Box::new(DmpcMaximalMatching::with_exec(params, ExecOptions::lean())),
            ));
        }
        for (alg, mut a) in algs {
            let run = time_stream_batched(a.as_mut(), &ups, K);
            assert_eq!(
                run.batch.violations, 0,
                "{alg} at n=2^{e}: model violations"
            );
            println!(
                "{alg:<13} | {n:>8} | {:>5} | {:>8} | {:>11.1} | {:>9.3} | {:>12} | {:>5}",
                params.storage_machines(),
                ups.len(),
                run.updates_per_sec(),
                run.secs,
                run.peak_resident_words,
                run.batch.violations,
            );
            cells.push(Cell {
                alg,
                n,
                p: params.storage_machines(),
                stream_len: ups.len(),
                run,
            });
        }
    }

    // ----- JSON ----------------------------------------------------------
    let canon_json: Vec<String> = canon
        .iter()
        .map(|c| {
            let vs_map = c.soa.updates_per_sec() / c.map.updates_per_sec();
            let (base, vs_pre_pr) = match pre_pr_baseline(c.alg, c.k) {
                Some((ups, words)) if canonical => (
                    format!(
                        "{{\"updates_per_sec\": {}, \"peak_resident_words\": {}}}",
                        json_f64(ups),
                        words
                    ),
                    json_f64(c.soa.updates_per_sec() / ups),
                ),
                _ => ("null".into(), "null".into()),
            };
            format!(
                concat!(
                    "    {{\"alg\": \"{}\", \"k\": {},\n",
                    "     \"map\": {},\n",
                    "     \"soa\": {},\n",
                    "     \"pre_pr\": {},\n",
                    "     \"speedup_vs_map\": {}, \"speedup_vs_pre_pr\": {}, ",
                    "\"digests_match\": {}}}"
                ),
                c.alg,
                c.k,
                timed_json(&c.map),
                timed_json(&c.soa),
                base,
                json_f64(vs_map),
                vs_pre_pr,
                c.digests_match,
            )
        })
        .collect();
    let cell_json: Vec<String> = cells
        .iter()
        .map(|c| {
            let input = c.n + 3 * c.n;
            format!(
                concat!(
                    "    {{\"alg\": \"{}\", \"n\": {}, \"p\": {}, \"stream_len\": {},\n",
                    "     \"current\": {},\n",
                    "     \"words_per_input\": {}}}"
                ),
                c.alg,
                c.n,
                c.p,
                c.stream_len,
                timed_json(&c.run),
                json_f64(c.run.peak_resident_words as f64 / input as f64),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"large_scale\",\n",
            "  \"pr\": 7,\n",
            "  \"seed\": {},\n",
            "  \"k\": {},\n",
            "  \"canonical_n\": {},\n",
            "  \"canonical_updates\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"baseline_host_cores\": {},\n",
            "  \"canonical\": {},\n",
            "  \"canonical_comparison\": [\n{}\n  ],\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SEED,
        K,
        CANON_N,
        CANON_UPDATES,
        host_cores,
        BASELINE_HOST_CORES,
        canonical,
        canon_json.join(",\n"),
        cell_json.join(",\n"),
    );
    std::fs::write(&json_path, &json).expect("write large-scale JSON");
    println!("\nwrote {json_path}");
}
