//! Regenerates the paper's Table 1 empirically (experiments E1-E6).

use dmpc_bench::measure_table1;
use dmpc_core::report::{render_table, TableRow};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!(
        "Empirical Table 1: n = {n}, m_max = {}, {steps} churn updates\n",
        3 * n
    );
    let rows = measure_table1(n, steps, 42);
    let rendered: Vec<TableRow> = rows
        .into_iter()
        .map(|r| TableRow {
            name: r.name.to_string(),
            claimed: (
                r.claimed.0.to_string(),
                r.claimed.1.to_string(),
                r.claimed.2.to_string(),
            ),
            agg: r.agg,
            batch: r.batch,
            query: r.query,
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 1 (worst case per update; measured on the simulator)",
            &rendered
        )
    );
    println!("Columns: claimed = paper bound, measured = worst case over the stream.");
    println!("'viol' counts capacity/model violations (must be 0).");
    println!("'batch rnds/up' = amortized rounds per update under k=16 batched execution");
    println!("(apply_batch; '-' = algorithm uses the looped default). 'query rnds/q' =");
    println!("amortized rounds per query under q=16 batched waves (answer_queries).");
    println!("Serialized lines:");
    for r in &rendered {
        if let Some(b) = &r.batch {
            println!(
                "  {} batch: {}",
                r.name,
                dmpc_core::report::batch_to_plain(b)
            );
        }
        if let Some(q) = &r.query {
            println!(
                "  {} query: {}",
                r.name,
                dmpc_core::report::query_to_plain(q)
            );
        }
    }
}
