//! Batch-scaling experiment: amortized DMPC cost per update as a function
//! of the batch size `k`.
//!
//! **Paper mapping.** The source paper (Italiano–Lattanzi–Mirrokni–
//! Parotsidis, SPAA 2019, arXiv:1905.09175) charges every *single* edge
//! update a (rounds, machines, communication) triple. The batch-dynamic
//! follow-up line — Nowicki–Onak, "Dynamic Graph Algorithms with Batch
//! Updates in the Massively Parallel Computation Model" (arXiv:2002.07800),
//! and Durfee et al., "Parallel Batch-Dynamic Graphs" (arXiv:1908.01956) —
//! shows that amortizing `k` updates per round-trip is where MPC-style
//! parallelism pays off. This bin measures exactly that crossover on the
//! simulator: for k in {1, 4, 16, 64, 256} it runs the same churn stream
//! through the genuinely batched `apply_batch` machine programs
//! (connectivity's classification fan-out, the matching coordinator's
//! shared prefetch) and through the looped single-update baseline, and
//! prints amortized rounds/words per update plus the speedup.
//!
//! **Conflict cells (PR 9).** With a third `json-path` argument the bin
//! additionally runs the conflict-group scheduler experiment and writes the
//! results as JSON: a *depth sweep* holds the structural ops per batch
//! fixed at 16 while the conflict-graph depth d sweeps {1, 4, 16} (via the
//! known-depth `conflict_batches` generator), showing batch rounds scale
//! with d — the serialization floor — not with the op count; and a 50/50
//! *mixed service cell* (reads answered between write windows of 64)
//! compares `Scheduler::Conflict` against `Scheduler::Serialized` on the
//! canonical workload, asserting bit-identical digests and answers. CI
//! gates both via `ci/check_conflict_scaling.py`; canonical numbers live in
//! `BENCH_PR9.json`.
//!
//! Usage: `batch_scaling [n] [steps] [json-path]` (defaults: 256 vertices,
//! 512 churn updates, no JSON; CI smokes it with a tiny `batch_scaling 32
//! 64` and runs the conflict cells with `batch_scaling 64 128
//! BENCH_PR9_ci.json`).

use dmpc_bench::{batch_scaling_sweep, standard_stream, BatchScalingPoint};
use dmpc_connectivity::{DmpcConnectivity, Routing};
use dmpc_core::report::batch_to_plain;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm, QueryableAlgorithm};
use dmpc_graph::queries::Op;
use dmpc_graph::streams::{self, QueryMix, TargetDist};
use dmpc_graph::{Query, Update};
use dmpc_matching::DmpcMaximalMatching;
use dmpc_mpc::{BatchMetrics, ExecOptions, QueryMetrics, Scheduler};

fn print_sweep(name: &str, points: &[BatchScalingPoint]) {
    println!("{name}: amortized cost per update vs batch size k");
    println!(
        "{:>6} | {:>13} | {:>13} | {:>8} | {:>13} | {:>13} | {:>5}",
        "k", "batched rnds", "looped rnds", "speedup", "batched words", "looped words", "viol"
    );
    for p in points {
        println!(
            "{:>6} | {:>13.3} | {:>13.3} | {:>7.2}x | {:>13.1} | {:>13.1} | {:>5}",
            p.k,
            p.batched.amortized_rounds(),
            p.looped.amortized_rounds(),
            p.round_speedup(),
            p.batched.amortized_words(),
            p.looped.amortized_words(),
            p.batched.violations,
        );
    }
    if let Some(p64) = points.iter().find(|p| p.k == 64) {
        println!("  k=64 batched: {}", batch_to_plain(&p64.batched));
        println!("  k=64 looped:  {}", batch_to_plain(&p64.looped));
    }
    println!();
}

/// One scheduler's totals for a depth-sweep or mixed conflict cell.
struct ConflictCell {
    scheduler: &'static str,
    dist: &'static str,
    groups: usize,
    depth: usize,
    ops: usize,
    rounds: usize,
    conflict_groups: usize,
    conflict_depth: usize,
    max_lanes: usize,
    violations: usize,
    digest: u64,
}

fn conflict_cell_json(c: &ConflictCell) -> String {
    format!(
        concat!(
            "    {{\"scheduler\": \"{}\", \"dist\": \"{}\", \"groups\": {}, \"depth\": {}, ",
            "\"ops\": {},\n",
            "     \"rounds\": {}, \"conflict_groups\": {}, \"conflict_depth\": {}, ",
            "\"max_lanes\": {},\n",
            "     \"violations\": {}, \"digest\": \"{:#018x}\"}}"
        ),
        c.scheduler,
        c.dist,
        c.groups,
        c.depth,
        c.ops,
        c.rounds,
        c.conflict_groups,
        c.conflict_depth,
        c.max_lanes,
        c.violations,
        c.digest,
    )
}

const SCHEDULERS: [(Scheduler, &str); 2] = [
    (Scheduler::Conflict, "conflict"),
    (Scheduler::Serialized, "serialized"),
];

/// Depth sweep: 16 structural link ops per batch, conflict depth d in
/// {1, 4, 16} (so 16, 4 and 1 disjoint groups respectively), both
/// schedulers on identical streams. Returns one cell per (d, scheduler).
fn run_depth_sweep(n: usize, seed: u64) -> Vec<ConflictCell> {
    let batches = if n >= 128 { 4 } else { 2 };
    let mut cells = Vec::new();
    println!("conflict depth sweep: 16 structural ops/batch, {batches} batches, d in {{1, 4, 16}}");
    println!(
        "{:>3} | {:>10} | {:>7} | {:>7} | {:>9} | {:>5}",
        "d", "scheduler", "rounds", "groups", "max lanes", "viol"
    );
    for (groups, depth) in [(16usize, 1usize), (4, 4), (1, 16)] {
        assert!(
            groups * (depth + 1) * batches <= n,
            "depth sweep needs more vertices"
        );
        let stream = streams::conflict_batches(n, groups, depth, batches, seed);
        let mut digests = Vec::new();
        for (sched, name) in SCHEDULERS {
            let mut alg = DmpcConnectivity::with_scheduler(
                DmpcParams::new(n, 3 * n),
                ExecOptions::default(),
                sched,
            );
            let mut bm = BatchMetrics::default();
            for batch in &stream {
                bm.merge(&alg.apply_batch(batch));
            }
            let digest = ElasticAlgorithm::state_digest(&alg);
            digests.push(digest);
            println!(
                "{depth:>3} | {name:>10} | {:>7} | {:>7} | {:>9} | {:>5}",
                bm.rounds, bm.conflict_groups, bm.max_lanes, bm.violations
            );
            assert_eq!(bm.violations, 0, "{name} d={depth} violated the model");
            assert_eq!(
                bm.conflict_depth, depth,
                "{name}: generator depth not reproduced by the partitioner"
            );
            cells.push(ConflictCell {
                scheduler: name,
                dist: "-",
                groups,
                depth,
                ops: groups * depth * batches,
                rounds: bm.rounds,
                conflict_groups: bm.conflict_groups,
                conflict_depth: bm.conflict_depth,
                max_lanes: bm.max_lanes,
                violations: bm.violations,
                digest,
            });
        }
        assert_eq!(
            digests[0], digests[1],
            "schedulers diverged on the d={depth} stream"
        );
    }
    // Rounds must grow with depth, not op count (ops are fixed per batch).
    let conflict_rounds: Vec<usize> = cells
        .iter()
        .filter(|c| c.scheduler == "conflict")
        .map(|c| c.rounds)
        .collect();
    assert!(
        conflict_rounds.windows(2).all(|w| w[0] < w[1]),
        "conflict rounds must increase with depth: {conflict_rounds:?}"
    );
    println!();
    cells
}

/// Mixed 50/50 service cell: reads answered between write windows of 64,
/// both schedulers on the identical windowed schedule (n vertices, 16
/// machines). Returns one cell per scheduler plus the query-round totals.
/// Uniform targets merge everything into few giant components as the run
/// progresses (shrinking the exploitable disjointness); clustered targets
/// keep components community-local, the service shape where the conflict
/// scheduler's canonical >= 2x claim is gated.
fn run_mixed_cell(
    n: usize,
    steps: usize,
    dist: TargetDist,
    dist_name: &'static str,
    seed: u64,
) -> Vec<(ConflictCell, QueryMetrics)> {
    let ops = streams::mixed_stream(n, steps, 50, dist, QueryMix::Connectivity, seed);
    let mut out = Vec::new();
    let mut answers_ref: Option<Vec<dmpc_graph::QueryAnswer>> = None;
    println!(
        "mixed 50/50 service cell ({dist_name}): {} ops, write windows of 64, 16 machines",
        ops.len()
    );
    for (sched, name) in SCHEDULERS {
        let exec = ExecOptions {
            scheduler: sched,
            ..ExecOptions::default()
        };
        let mut alg =
            DmpcConnectivity::with_cluster(DmpcParams::new(n, 3 * n), exec, Routing::Multicast, 16);
        let mut bm = BatchMetrics::default();
        let mut qm = QueryMetrics::default();
        let mut answers = Vec::new();
        let mut writes: Vec<Update> = Vec::new();
        let mut reads: Vec<Query> = Vec::new();
        let flush = |alg: &mut DmpcConnectivity,
                     writes: &mut Vec<Update>,
                     reads: &mut Vec<Query>,
                     bm: &mut BatchMetrics,
                     qm: &mut QueryMetrics,
                     answers: &mut Vec<dmpc_graph::QueryAnswer>| {
            if !writes.is_empty() {
                bm.merge(&alg.apply_batch(writes));
                writes.clear();
            }
            if !reads.is_empty() {
                let (a, m) = alg.answer_queries(reads);
                answers.extend(a);
                qm.merge(&m);
                reads.clear();
            }
        };
        for op in &ops {
            match op {
                Op::Write(u) => writes.push(*u),
                Op::Read(q) => reads.push(*q),
            }
            if writes.len() == 64 {
                flush(
                    &mut alg,
                    &mut writes,
                    &mut reads,
                    &mut bm,
                    &mut qm,
                    &mut answers,
                );
            }
        }
        flush(
            &mut alg,
            &mut writes,
            &mut reads,
            &mut bm,
            &mut qm,
            &mut answers,
        );
        match &answers_ref {
            None => answers_ref = Some(answers),
            Some(r) => assert_eq!(r, &answers, "mixed answers diverged between schedulers"),
        }
        println!(
            "  {name:>10}: batch rounds {} (query rounds {}), groups {}, max lanes {}, viol {}",
            bm.rounds,
            qm.rounds,
            bm.conflict_groups,
            bm.max_lanes,
            bm.violations + qm.violations
        );
        out.push((
            ConflictCell {
                scheduler: name,
                dist: dist_name,
                groups: 0,
                depth: 0,
                ops: ops.len(),
                rounds: bm.rounds,
                conflict_groups: bm.conflict_groups,
                conflict_depth: bm.conflict_depth,
                max_lanes: bm.max_lanes,
                violations: bm.violations + qm.violations,
                digest: ElasticAlgorithm::state_digest(&alg),
            },
            qm,
        ));
    }
    assert_eq!(
        out[0].0.digest, out[1].0.digest,
        "schedulers diverged on the {dist_name} mixed cell"
    );
    assert!(
        out[0].0.rounds <= out[1].0.rounds,
        "conflict scheduling must not cost extra rounds ({dist_name})"
    );
    println!();
    out
}

fn write_conflict_json(
    path: &str,
    n: usize,
    steps: usize,
    seed: u64,
    sweep: &[ConflictCell],
    mixed: &[(ConflictCell, QueryMetrics)],
) {
    let sweep_rows: Vec<String> = sweep.iter().map(conflict_cell_json).collect();
    let mixed_rows: Vec<String> = mixed
        .iter()
        .map(|(c, qm)| {
            let mut row = conflict_cell_json(c);
            let tail = format!(", \"query_rounds\": {}}}", qm.rounds);
            row.truncate(row.len() - 1);
            row.push_str(&tail);
            row
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"batch_scaling_conflict\",\n",
            "  \"pr\": 9,\n",
            "  \"n\": {},\n",
            "  \"steps\": {},\n",
            "  \"seed\": {},\n",
            "  \"note\": \"depth sweep: 16 structural link ops per batch from the known-depth \
             conflict_batches generator, d in {{1,4,16}}; rounds must grow with d (the \
             serialization floor) at fixed op count, and the conflict scheduler must never \
             exceed the serialized controller. mixed: 50/50 read/write service loop, reads \
             answered between write windows of 64, 16 machines; digests and answers are \
             bit-identical across schedulers. uniform targets merge toward giant components \
             (little exploitable disjointness late in the run); the clustered cell is the \
             canonical locality-heavy service shape where conflict must cut total batch \
             rounds >= 2x at n >= 256.\",\n",
            "  \"depth_sweep\": [\n{}\n  ],\n",
            "  \"mixed\": [\n{}\n  ]\n",
            "}}\n"
        ),
        n,
        steps,
        seed,
        sweep_rows.join(",\n"),
        mixed_rows.join(",\n")
    );
    std::fs::write(path, &json).expect("write conflict-scaling JSON");
    println!("wrote {path}");
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let conflict_json = std::env::args().nth(3);
    let params = DmpcParams::new(n, 3 * n);
    let ups: Vec<Update> = standard_stream(n, steps, 42);
    let ks: Vec<usize> = [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&k| k <= ups.len().max(1))
        .collect();
    println!(
        "Batch scaling: n = {n}, m_max = {}, {} churn updates, k in {ks:?}\n",
        3 * n,
        ups.len()
    );

    let conn = batch_scaling_sweep(
        || Box::new(DmpcConnectivity::new(params)) as Box<dyn DynamicGraphAlgorithm>,
        &ups,
        &ks,
    );
    print_sweep("connectivity", &conn);

    let mm = batch_scaling_sweep(
        || Box::new(DmpcMaximalMatching::new(params)) as Box<dyn DynamicGraphAlgorithm>,
        &ups,
        &ks,
    );
    print_sweep("maximal matching", &mm);

    println!("Rounds are totals over the whole stream divided by updates (amortized);");
    println!("the looped baseline pays every update's quiescence run separately, the");
    println!("batched run shares injection, classification/prefetch, and drain rounds.");

    if let Some(path) = conflict_json {
        println!();
        let sweep = run_depth_sweep(n, 42);
        let mut mixed = run_mixed_cell(n, steps, TargetDist::Uniform, "uniform", 42);
        let clustered = run_mixed_cell(
            n,
            steps,
            TargetDist::Clustered { clusters: 16 },
            "clustered",
            42,
        );
        if n >= 256 {
            let (con, ser) = (&clustered[0].0, &clustered[1].0);
            assert!(
                2 * con.rounds <= ser.rounds,
                "canonical clustered cell: conflict must cut batch rounds >= 2x \
                 ({} vs {})",
                con.rounds,
                ser.rounds
            );
        }
        mixed.extend(clustered);
        write_conflict_json(&path, n, steps, 42, &sweep, &mixed);
    }
}
