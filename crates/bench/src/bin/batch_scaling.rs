//! Batch-scaling experiment: amortized DMPC cost per update as a function
//! of the batch size `k`.
//!
//! **Paper mapping.** The source paper (Italiano–Lattanzi–Mirrokni–
//! Parotsidis, SPAA 2019, arXiv:1905.09175) charges every *single* edge
//! update a (rounds, machines, communication) triple. The batch-dynamic
//! follow-up line — Nowicki–Onak, "Dynamic Graph Algorithms with Batch
//! Updates in the Massively Parallel Computation Model" (arXiv:2002.07800),
//! and Durfee et al., "Parallel Batch-Dynamic Graphs" (arXiv:1908.01956) —
//! shows that amortizing `k` updates per round-trip is where MPC-style
//! parallelism pays off. This bin measures exactly that crossover on the
//! simulator: for k in {1, 4, 16, 64, 256} it runs the same churn stream
//! through the genuinely batched `apply_batch` machine programs
//! (connectivity's classification fan-out, the matching coordinator's
//! shared prefetch) and through the looped single-update baseline, and
//! prints amortized rounds/words per update plus the speedup.
//!
//! Usage: `batch_scaling [n] [steps]` (defaults: 256 vertices, 512 churn
//! updates; CI smokes it with a tiny `batch_scaling 32 64`).

use dmpc_bench::{batch_scaling_sweep, standard_stream, BatchScalingPoint};
use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::report::batch_to_plain;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::Update;
use dmpc_matching::DmpcMaximalMatching;

fn print_sweep(name: &str, points: &[BatchScalingPoint]) {
    println!("{name}: amortized cost per update vs batch size k");
    println!(
        "{:>6} | {:>13} | {:>13} | {:>8} | {:>13} | {:>13} | {:>5}",
        "k", "batched rnds", "looped rnds", "speedup", "batched words", "looped words", "viol"
    );
    for p in points {
        println!(
            "{:>6} | {:>13.3} | {:>13.3} | {:>7.2}x | {:>13.1} | {:>13.1} | {:>5}",
            p.k,
            p.batched.amortized_rounds(),
            p.looped.amortized_rounds(),
            p.round_speedup(),
            p.batched.amortized_words(),
            p.looped.amortized_words(),
            p.batched.violations,
        );
    }
    if let Some(p64) = points.iter().find(|p| p.k == 64) {
        println!("  k=64 batched: {}", batch_to_plain(&p64.batched));
        println!("  k=64 looped:  {}", batch_to_plain(&p64.looped));
    }
    println!();
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let params = DmpcParams::new(n, 3 * n);
    let ups: Vec<Update> = standard_stream(n, steps, 42);
    let ks: Vec<usize> = [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&k| k <= ups.len().max(1))
        .collect();
    println!(
        "Batch scaling: n = {n}, m_max = {}, {} churn updates, k in {ks:?}\n",
        3 * n,
        ups.len()
    );

    let conn = batch_scaling_sweep(
        || Box::new(DmpcConnectivity::new(params)) as Box<dyn DynamicGraphAlgorithm>,
        &ups,
        &ks,
    );
    print_sweep("connectivity", &conn);

    let mm = batch_scaling_sweep(
        || Box::new(DmpcMaximalMatching::new(params)) as Box<dyn DynamicGraphAlgorithm>,
        &ups,
        &ks,
    );
    print_sweep("maximal matching", &mm);

    println!("Rounds are totals over the whole stream divided by updates (amortized);");
    println!("the looped baseline pays every update's quiescence run separately, the");
    println!("batched run shares injection, classification/prefetch, and drain rounds.");
}
