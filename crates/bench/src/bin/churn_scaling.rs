//! Machine churn under load: what does elasticity cost, and is recovery
//! exact?
//!
//! **Why this exists.** PR 6 adds the chaos plane: shard split/merge
//! migrations, fail-stop kills, and checkpoint/replay revives, all shipped
//! through the metered message plane in capacity-budgeted chunks. This bin
//! drives the canonical seeded chaos run — cluster-local churn batches with
//! kills, revives, splits and merges fired between batches — and *asserts*
//! the tentpole claim: the final state digest is **bit-identical** to the
//! failure-free run over the same stream, with zero model violations in
//! both the workload and the recovery traffic. The per-event recovery
//! trajectory (rounds, words, machines touched, replica replay size) is
//! what lands in the JSON.
//!
//! **PR 8 adds the mid-flight cells.** A second sweep kills a machine *at
//! round r inside* a structural batch for several r: the epoch aborts,
//! survivors roll back to the pre-batch frontier, the victim rebuilds via
//! checkpoint+replay, degraded reads are served during the rebuild, and the
//! batch re-executes. Each cell records the retry/backoff/recovery
//! trajectory and asserts bit-identical recovery with exact in-flight
//! accounting; the cells land in `BENCH_PR8.json`.
//!
//! CI smoke-runs this bin at tiny sizes and gates on `violations == 0` and
//! `digest_match == true` (plus the mid-flight gates: retries fired, zero
//! untracked loss, degraded reads answered); the canonical numbers live in
//! `BENCH_PR6.json` / `BENCH_PR8.json` at the repo root.
//!
//! Usage: `churn_scaling [n] [steps] [events] [json-path] [midflight-json]`
//! (defaults: 256, 512, 12, `BENCH_PR6.json`, `BENCH_PR8.json`).

use dmpc_connectivity::{DmpcConnectivity, Routing};
use dmpc_core::{
    apply_unweighted, run_chaos_stream, run_chaos_stream_with, run_plain_stream, ChaosOptions,
    ChurnReport, DmpcParams, DynamicGraphAlgorithm, ElasticAlgorithm, QueryableAlgorithm,
};
use dmpc_graph::{streams, Query};
use dmpc_mpc::{ChaosCaps, ChaosKind, ChaosPlan, ExecOptions};

const CANON_N: usize = 256;
const CANON_STEPS: usize = 512;
const CANON_EVENTS: usize = 12;
/// The canonical machine count (matches the PR-5 batched-query bench).
const P: usize = 16;
/// Updates per batch: chaos events fire at batch boundaries, so this is the
/// granularity at which failures interleave with the workload.
const BATCH: usize = 16;
/// Clusters in the workload: components confined to n/CLUSTERS-vertex
/// ranges, so migrations and directory repairs get real multi-machine
/// components without every component touching every machine.
const CLUSTERS: usize = 8;
/// Checkpoint cadence (batches between full-cluster checkpoints).
const CHECKPOINT_EVERY: usize = 8;
const SEED: u64 = 42;

/// Capacity provisioning when P is forced below the model's O(sqrt N)
/// default: each machine holds Theta(N / P) words (same discipline as the
/// `active_scaling` bench).
fn params_for(n: usize) -> DmpcParams {
    let base = DmpcParams::new(n, 3 * n);
    let mem_mult = 32 * base.storage_machines().div_ceil(P).max(1);
    base.with_multiplier(mem_mult)
}

fn make_alg(n: usize) -> DmpcConnectivity {
    DmpcConnectivity::with_cluster(params_for(n), ExecOptions::default(), Routing::Multicast, P)
}

fn event_json(e: &dmpc_core::AppliedEvent) -> String {
    format!(
        "    {{\"at_batch\": {}, \"event\": \"{}\", \"rounds\": {}, \"words\": {}, \
         \"machines_touched\": {}, \"replay_updates\": {}}}",
        e.at_batch, e.kind, e.rounds, e.words, e.machines_touched, e.replay_updates
    )
}

fn report_json(
    n: usize,
    batches: usize,
    chaos: &ChurnReport,
    plain: &ChurnReport,
    digest_match: bool,
) -> String {
    let events: Vec<String> = chaos.applied.iter().map(event_json).collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"churn_scaling\",\n",
            "  \"pr\": 6,\n",
            "  \"n\": {n},\n",
            "  \"p\": {p},\n",
            "  \"batches\": {batches},\n",
            "  \"updates\": {updates},\n",
            "  \"seed\": {seed},\n",
            "  \"checkpoint_every\": {ce},\n",
            "  \"digest_match\": {dm},\n",
            "  \"final_digest\": {fd},\n",
            "  \"violations\": {viol},\n",
            "  \"events_applied\": {ea},\n",
            "  \"events_skipped\": {es},\n",
            "  \"recovery\": {{\"rounds\": {rr}, \"total_words\": {rw}, ",
            "\"total_messages\": {rm}, \"max_words_per_round\": {rmw}, ",
            "\"machines_touched\": {rmt}, \"replay_updates\": {rru}, ",
            "\"replay_rounds\": {rrr}}},\n",
            "  \"workload\": {{\"rounds\": {wr}, \"total_words\": {ww}}},\n",
            "  \"plain_workload\": {{\"rounds\": {pr}, \"total_words\": {pw}}},\n",
            "  \"note\": \"chaos run vs failure-free run over the identical \
             cluster-local churn stream; digest_match asserts bit-identical \
             recovery of every kill/split/merge. recovery traffic is metered \
             through the same message plane as updates, in \
             capacity-budgeted chunks.\",\n",
            "  \"trajectory\": [\n{tr}\n  ]\n",
            "}}\n"
        ),
        n = n,
        p = P,
        batches = batches,
        updates = chaos.updates,
        seed = SEED,
        ce = CHECKPOINT_EVERY,
        dm = digest_match,
        fd = chaos.final_digest,
        viol = chaos.recovery.violations + chaos.workload.violations,
        ea = chaos.applied.len(),
        es = chaos.skipped,
        rr = chaos.recovery.rounds,
        rw = chaos.recovery.total_words,
        rm = chaos.recovery.total_messages,
        rmw = chaos.recovery.max_words_per_round,
        rmt = chaos.recovery.machines_touched,
        rru = chaos.recovery.replay_updates,
        rrr = chaos.recovery.replay_rounds,
        wr = chaos.workload.rounds,
        ww = chaos.workload.total_words,
        pr = plain.workload.rounds,
        pw = plain.workload.total_words,
        tr = events.join(",\n"),
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_N);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_STEPS);
    let events: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_EVENTS);
    let json_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_PR6.json".into());
    let mid_json_path = std::env::args()
        .nth(5)
        .unwrap_or_else(|| "BENCH_PR8.json".into());

    let batches = streams::chaos_churn_batches(n, CLUSTERS, n / (2 * CLUSTERS), steps, BATCH, SEED);
    let plan = ChaosPlan::generate(SEED, batches.len(), P, events, ChaosCaps::default());
    println!(
        "Churn scaling: n = {n}, P = {P}, {} batches x {BATCH} updates, {} chaos events planned",
        batches.len(),
        plan.events.len()
    );

    let chaos = run_chaos_stream(
        || make_alg(n),
        apply_unweighted,
        &batches,
        &plan,
        CHECKPOINT_EVERY,
    );
    let plain = run_plain_stream(|| make_alg(n), apply_unweighted, &batches);

    println!(
        "\n{:>8} | {:>12} | {:>6} | {:>8} | {:>8} | {:>6}",
        "batch", "event", "rounds", "words", "touched", "replay"
    );
    for e in &chaos.applied {
        println!(
            "{:>8} | {:>12} | {:>6} | {:>8} | {:>8} | {:>6}",
            e.at_batch, e.kind, e.rounds, e.words, e.machines_touched, e.replay_updates
        );
    }
    println!(
        "\nrecovery: {} events, {} rounds, {} words ({} max/round), {} replayed updates",
        chaos.recovery.events,
        chaos.recovery.rounds,
        chaos.recovery.total_words,
        chaos.recovery.max_words_per_round,
        chaos.recovery.replay_updates,
    );

    let digest_match = chaos.final_digest == plain.final_digest;
    // The tentpole claims, asserted on every run (CI smoke included).
    assert!(digest_match, "chaos run diverged from failure-free run");
    assert_eq!(
        chaos.recovery.violations, 0,
        "recovery traffic violated the model"
    );
    assert_eq!(chaos.workload.violations, 0, "workload violated the model");
    assert_eq!(chaos.updates, plain.updates, "chaos run lost updates");
    assert!(
        !chaos.applied.is_empty(),
        "the plan must actually fire events"
    );

    // Ground truth: the chaos cluster's components equal a DynamicGraph
    // replay of the same stream.
    let mut check = make_alg(n);
    for b in &batches {
        check.apply_batch(b);
    }
    assert_eq!(check.state_digest(), chaos.final_digest);
    let flat: Vec<dmpc_graph::Update> = batches.iter().flatten().copied().collect();
    let g = streams::replay(n, &flat);
    let (labels, truth) = (check.component_labels(), g.components());
    let norm = |ls: &[u32]| {
        let mut map = std::collections::HashMap::new();
        ls.iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    assert_eq!(
        norm(&labels),
        norm(&truth),
        "components diverge from ground truth"
    );

    println!(
        "digest match: {digest_match} (0x{:016x}), violations: 0",
        chaos.final_digest
    );
    let json = report_json(n, batches.len(), &chaos, &plain, digest_match);
    std::fs::write(&json_path, &json).expect("write churn-scaling JSON");
    println!("wrote {json_path}");

    // ----- PR 8: the mid-flight kill-round sweep ---------------------------
    let target = batches.len() / 2;
    let victim: u32 = 2;
    let block = n.div_ceil(P);
    // Outage reads: two hitting the victim's vertex range (degrade), one
    // wholly on live machines (exact), one conservative path query.
    let reads = [
        Query::Connected((victim as usize * block) as u32, 0),
        Query::ComponentOf((victim as usize * block + 1) as u32),
        Query::Connected(0, 1),
        Query::PathMax(0, 1),
    ];
    println!(
        "\nMid-flight sweep: kill machine {victim} at round r of batch {target} \
         ({} outage reads per abort)",
        reads.len()
    );
    println!(
        "{:>6} | {:>5} | {:>7} | {:>5} | {:>8} | {:>8} | {:>7} | {:>8} | {:>8}",
        "round",
        "fired",
        "aborted",
        "lost",
        "rec rnds",
        "rec wrds",
        "backoff",
        "latency",
        "degraded"
    );
    let mut cells: Vec<String> = Vec::new();
    let mut total_fired = 0usize;
    let mut total_degraded = 0usize;
    for r in [1u32, 2, 4, 8] {
        let plan =
            ChaosPlan::new(SEED + r as u64).with_event_in_round(target, r, ChaosKind::Kill(victim));
        let opts = ChaosOptions {
            checkpoint_every: CHECKPOINT_EVERY,
            outage_reads: &reads,
            ..Default::default()
        };
        let mid = run_chaos_stream_with(
            || make_alg(n),
            apply_unweighted,
            |a: &mut DmpcConnectivity, qs: &[Query]| a.answer_queries(qs),
            &batches,
            &plan,
            opts,
        );
        let cell_match = mid.final_digest == plain.final_digest;
        // The PR 8 gates, per cell: bit-identical recovery and exact
        // accounting (no lost word ever reaches the merged workload).
        assert!(cell_match, "mid-flight kill at round {r} diverged");
        let accounting_exact = mid.workload.lost_words == 0 && mid.workload.lost_messages == 0;
        assert!(accounting_exact, "untracked in-flight loss at round {r}");
        assert_eq!(mid.workload.violations, 0);
        let rec = mid.mid_flight.first();
        let (aborted, lw, lm, rr, rw, ru, bo, lat, ra, da) =
            rec.map_or((0, 0, 0, 0, 0, 0, 0, 0, 0, 0), |m| {
                (
                    m.aborted_rounds,
                    m.lost_words,
                    m.lost_messages,
                    m.recovery_rounds,
                    m.recovery_words,
                    m.replay_updates,
                    m.backoff_rounds,
                    m.latency_rounds,
                    m.reads_answered,
                    m.degraded_answers,
                )
            });
        total_fired += mid.retries;
        total_degraded += mid.degraded_answers;
        println!(
            "{:>6} | {:>5} | {:>7} | {:>5} | {:>8} | {:>8} | {:>7} | {:>8} | {:>8}",
            r, mid.retries, aborted, lw, rr, rw, bo, lat, da
        );
        cells.push(format!(
            "    {{\"kill_round\": {r}, \"retries\": {}, \"aborted_rounds\": {aborted}, \
             \"lost_words\": {lw}, \"lost_messages\": {lm}, \"recovery_rounds\": {rr}, \
             \"recovery_words\": {rw}, \"replay_updates\": {ru}, \"backoff_rounds\": {bo}, \
             \"latency_rounds\": {lat}, \"reads_answered\": {ra}, \"degraded_answers\": {da}, \
             \"digest_match\": {cell_match}, \"accounting_exact\": {accounting_exact}}}",
            mid.retries,
        ));
    }
    // Sweep-level gates: the early offsets must actually abort an epoch, and
    // degraded reads must have been served during at least one rebuild.
    assert!(total_fired >= 1, "no mid-flight kill fired in the sweep");
    assert!(
        total_degraded >= 1,
        "no degraded read was served during the rebuilds"
    );
    let mid_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"churn_scaling_midflight\",\n",
            "  \"pr\": 8,\n",
            "  \"n\": {n},\n",
            "  \"p\": {p},\n",
            "  \"batches\": {nb},\n",
            "  \"target_batch\": {tb},\n",
            "  \"victim\": {victim},\n",
            "  \"seed\": {seed},\n",
            "  \"retries_fired\": {tf},\n",
            "  \"degraded_answers\": {td},\n",
            "  \"note\": \"kill machine `victim` at round r inside batch \
             `target_batch`; the epoch aborts, survivors roll back to the \
             pre-batch frontier, the victim rebuilds via checkpoint+replay \
             while reads degrade, and the batch re-executes bit-identically. \
             accounting_exact asserts every in-flight word was quarantined \
             as LostInFlight (never merged into the clean workload).\",\n",
            "  \"cells\": [\n{cells}\n  ]\n",
            "}}\n"
        ),
        n = n,
        p = P,
        nb = batches.len(),
        tb = target,
        victim = victim,
        seed = SEED,
        tf = total_fired,
        td = total_degraded,
        cells = cells.join(",\n"),
    );
    std::fs::write(&mid_json_path, &mid_json).expect("write mid-flight JSON");
    println!("wrote {mid_json_path}");
}
