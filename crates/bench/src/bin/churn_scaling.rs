//! Machine churn under load: what does elasticity cost, and is recovery
//! exact?
//!
//! **Why this exists.** PR 6 adds the chaos plane: shard split/merge
//! migrations, fail-stop kills, and checkpoint/replay revives, all shipped
//! through the metered message plane in capacity-budgeted chunks. This bin
//! drives the canonical seeded chaos run — cluster-local churn batches with
//! kills, revives, splits and merges fired between batches — and *asserts*
//! the tentpole claim: the final state digest is **bit-identical** to the
//! failure-free run over the same stream, with zero model violations in
//! both the workload and the recovery traffic. The per-event recovery
//! trajectory (rounds, words, machines touched, replica replay size) is
//! what lands in the JSON.
//!
//! CI smoke-runs this bin at tiny sizes and gates on `violations == 0` and
//! `digest_match == true`; the canonical numbers live in `BENCH_PR6.json`
//! at the repo root.
//!
//! Usage: `churn_scaling [n] [steps] [events] [json-path]` (defaults: 256,
//! 512, 12, `BENCH_PR6.json`).

use dmpc_connectivity::{DmpcConnectivity, Routing};
use dmpc_core::{
    apply_unweighted, run_chaos_stream, run_plain_stream, ChurnReport, DmpcParams,
    DynamicGraphAlgorithm, ElasticAlgorithm,
};
use dmpc_graph::streams;
use dmpc_mpc::{ChaosCaps, ChaosPlan, ExecOptions};

const CANON_N: usize = 256;
const CANON_STEPS: usize = 512;
const CANON_EVENTS: usize = 12;
/// The canonical machine count (matches the PR-5 batched-query bench).
const P: usize = 16;
/// Updates per batch: chaos events fire at batch boundaries, so this is the
/// granularity at which failures interleave with the workload.
const BATCH: usize = 16;
/// Clusters in the workload: components confined to n/CLUSTERS-vertex
/// ranges, so migrations and directory repairs get real multi-machine
/// components without every component touching every machine.
const CLUSTERS: usize = 8;
/// Checkpoint cadence (batches between full-cluster checkpoints).
const CHECKPOINT_EVERY: usize = 8;
const SEED: u64 = 42;

/// Capacity provisioning when P is forced below the model's O(sqrt N)
/// default: each machine holds Theta(N / P) words (same discipline as the
/// `active_scaling` bench).
fn params_for(n: usize) -> DmpcParams {
    let base = DmpcParams::new(n, 3 * n);
    let mem_mult = 32 * base.storage_machines().div_ceil(P).max(1);
    base.with_multiplier(mem_mult)
}

fn make_alg(n: usize) -> DmpcConnectivity {
    DmpcConnectivity::with_cluster(params_for(n), ExecOptions::default(), Routing::Multicast, P)
}

fn event_json(e: &dmpc_core::AppliedEvent) -> String {
    format!(
        "    {{\"at_batch\": {}, \"event\": \"{}\", \"rounds\": {}, \"words\": {}, \
         \"machines_touched\": {}, \"replay_updates\": {}}}",
        e.at_batch, e.kind, e.rounds, e.words, e.machines_touched, e.replay_updates
    )
}

fn report_json(
    n: usize,
    batches: usize,
    chaos: &ChurnReport,
    plain: &ChurnReport,
    digest_match: bool,
) -> String {
    let events: Vec<String> = chaos.applied.iter().map(event_json).collect();
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"churn_scaling\",\n",
            "  \"pr\": 6,\n",
            "  \"n\": {n},\n",
            "  \"p\": {p},\n",
            "  \"batches\": {batches},\n",
            "  \"updates\": {updates},\n",
            "  \"seed\": {seed},\n",
            "  \"checkpoint_every\": {ce},\n",
            "  \"digest_match\": {dm},\n",
            "  \"final_digest\": {fd},\n",
            "  \"violations\": {viol},\n",
            "  \"events_applied\": {ea},\n",
            "  \"events_skipped\": {es},\n",
            "  \"recovery\": {{\"rounds\": {rr}, \"total_words\": {rw}, ",
            "\"total_messages\": {rm}, \"max_words_per_round\": {rmw}, ",
            "\"machines_touched\": {rmt}, \"replay_updates\": {rru}, ",
            "\"replay_rounds\": {rrr}}},\n",
            "  \"workload\": {{\"rounds\": {wr}, \"total_words\": {ww}}},\n",
            "  \"plain_workload\": {{\"rounds\": {pr}, \"total_words\": {pw}}},\n",
            "  \"note\": \"chaos run vs failure-free run over the identical \
             cluster-local churn stream; digest_match asserts bit-identical \
             recovery of every kill/split/merge. recovery traffic is metered \
             through the same message plane as updates, in \
             capacity-budgeted chunks.\",\n",
            "  \"trajectory\": [\n{tr}\n  ]\n",
            "}}\n"
        ),
        n = n,
        p = P,
        batches = batches,
        updates = chaos.updates,
        seed = SEED,
        ce = CHECKPOINT_EVERY,
        dm = digest_match,
        fd = chaos.final_digest,
        viol = chaos.recovery.violations + chaos.workload.violations,
        ea = chaos.applied.len(),
        es = chaos.skipped,
        rr = chaos.recovery.rounds,
        rw = chaos.recovery.total_words,
        rm = chaos.recovery.total_messages,
        rmw = chaos.recovery.max_words_per_round,
        rmt = chaos.recovery.machines_touched,
        rru = chaos.recovery.replay_updates,
        rrr = chaos.recovery.replay_rounds,
        wr = chaos.workload.rounds,
        ww = chaos.workload.total_words,
        pr = plain.workload.rounds,
        pw = plain.workload.total_words,
        tr = events.join(",\n"),
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_N);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_STEPS);
    let events: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CANON_EVENTS);
    let json_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_PR6.json".into());

    let batches = streams::chaos_churn_batches(n, CLUSTERS, n / (2 * CLUSTERS), steps, BATCH, SEED);
    let plan = ChaosPlan::generate(SEED, batches.len(), P, events, ChaosCaps::default());
    println!(
        "Churn scaling: n = {n}, P = {P}, {} batches x {BATCH} updates, {} chaos events planned",
        batches.len(),
        plan.events.len()
    );

    let chaos = run_chaos_stream(
        || make_alg(n),
        apply_unweighted,
        &batches,
        &plan,
        CHECKPOINT_EVERY,
    );
    let plain = run_plain_stream(|| make_alg(n), apply_unweighted, &batches);

    println!(
        "\n{:>8} | {:>12} | {:>6} | {:>8} | {:>8} | {:>6}",
        "batch", "event", "rounds", "words", "touched", "replay"
    );
    for e in &chaos.applied {
        println!(
            "{:>8} | {:>12} | {:>6} | {:>8} | {:>8} | {:>6}",
            e.at_batch, e.kind, e.rounds, e.words, e.machines_touched, e.replay_updates
        );
    }
    println!(
        "\nrecovery: {} events, {} rounds, {} words ({} max/round), {} replayed updates",
        chaos.recovery.events,
        chaos.recovery.rounds,
        chaos.recovery.total_words,
        chaos.recovery.max_words_per_round,
        chaos.recovery.replay_updates,
    );

    let digest_match = chaos.final_digest == plain.final_digest;
    // The tentpole claims, asserted on every run (CI smoke included).
    assert!(digest_match, "chaos run diverged from failure-free run");
    assert_eq!(
        chaos.recovery.violations, 0,
        "recovery traffic violated the model"
    );
    assert_eq!(chaos.workload.violations, 0, "workload violated the model");
    assert_eq!(chaos.updates, plain.updates, "chaos run lost updates");
    assert!(
        !chaos.applied.is_empty(),
        "the plan must actually fire events"
    );

    // Ground truth: the chaos cluster's components equal a DynamicGraph
    // replay of the same stream.
    let mut check = make_alg(n);
    for b in &batches {
        check.apply_batch(b);
    }
    assert_eq!(check.state_digest(), chaos.final_digest);
    let flat: Vec<dmpc_graph::Update> = batches.iter().flatten().copied().collect();
    let g = streams::replay(n, &flat);
    let (labels, truth) = (check.component_labels(), g.components());
    let norm = |ls: &[u32]| {
        let mut map = std::collections::HashMap::new();
        ls.iter()
            .map(|&l| {
                let next = map.len() as u32;
                *map.entry(l).or_insert(next)
            })
            .collect::<Vec<u32>>()
    };
    assert_eq!(
        norm(&labels),
        norm(&truth),
        "components diverge from ground truth"
    );

    println!(
        "digest match: {digest_match} (0x{:016x}), violations: 0",
        chaos.final_digest
    );
    let json = report_json(n, batches.len(), &chaos, &plain, digest_match);
    std::fs::write(&json_path, &json).expect("write churn-scaling JSON");
    println!("wrote {json_path}");
}
