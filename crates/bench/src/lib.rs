//! Shared drivers for the benchmark binaries and Criterion benches: run
//! each algorithm over the standard workloads and collect the Table-1
//! quantities.
//!
//! # Example
//!
//! ```
//! use dmpc_bench::{run_unweighted, standard_stream};
//! use dmpc_reduction::ReducedConnectivity;
//!
//! let ups = standard_stream(16, 20, 7);
//! let agg = run_unweighted(&mut ReducedConnectivity::new(16), &ups);
//! assert!(agg.updates > 0);
//! assert_eq!(agg.violations, 0);
//! ```

use dmpc_connectivity::{DmpcConnectivity, DmpcMst};
use dmpc_core::experiment::ScalingSweep;
use dmpc_core::{
    apply_batch_looped, run_stream_batched, DmpcParams, DynamicGraphAlgorithm, QueryableAlgorithm,
    WeightedDynamicGraphAlgorithm,
};
use dmpc_graph::streams::{self, Update, WeightedUpdate};
use dmpc_graph::{Query, QueryAnswer, V};
use dmpc_matching::cs::{CsMatching, CsParams};
use dmpc_matching::{DmpcMaximalMatching, DmpcThreeHalves};
use dmpc_mpc::{AggregateMetrics, BatchMetrics, QueryMetrics};
use dmpc_reduction::{ReducedConnectivity, ReducedMatching, ReducedMst};

/// Standard workload: build-up plus churn, sized to the vertex count.
pub fn standard_stream(n: usize, steps: usize, seed: u64) -> Vec<Update> {
    streams::churn_stream(n, 2 * n, steps, 0.5, seed)
}

/// The canonical deployment at vertex count `n`: `m_max = 3n`, so the
/// model provisions `P = Θ(N/S)` storage machines. Every bench bin sizes
/// its instances through this one helper.
pub fn canonical_params(n: usize) -> DmpcParams {
    DmpcParams::new(n, 3 * n)
}

/// Canonical bench setup shared by the scaling, throughput and large-n
/// trajectory bins: the [`canonical_params`] deployment plus the standard
/// churn stream (`2n` build-up inserts, then `steps` mixed updates).
pub fn canonical_workload(n: usize, steps: usize, seed: u64) -> (DmpcParams, Vec<Update>) {
    (canonical_params(n), standard_stream(n, steps, seed))
}

/// Cluster grain of the large-n trajectory workload: components stay inside
/// 256-vertex ranges, so a structural op's owner set is bounded by a
/// constant as `n` (and with it `P`) grows. The uniform churn stream would
/// instead grow one giant component owned by every machine, making each
/// simulated update cost Θ(n) — a property of simulating the *model* on one
/// host, not of the algorithms.
pub const TRAJECTORY_CLUSTER: usize = 256;

/// Large-n trajectory setup: the [`canonical_params`] deployment plus
/// clustered churn at the fixed [`TRAJECTORY_CLUSTER`] grain, density
/// matched to the canonical stream (2 edges per vertex build-up, then
/// `steps` mixed updates at 50% inserts).
pub fn trajectory_workload(n: usize, steps: usize, seed: u64) -> (DmpcParams, Vec<Update>) {
    let grain = TRAJECTORY_CLUSTER.min(n);
    let ups = streams::clustered_churn_stream(n, (n / grain).max(1), 2 * grain, steps, 0.5, seed);
    (canonical_params(n), ups)
}

/// Worst-case connectivity workload: every deletion splits a tree.
pub fn tree_stream(n: usize, steps: usize, seed: u64) -> Vec<Update> {
    streams::tree_churn_stream(n, steps, seed)
}

/// Runs an unweighted dynamic algorithm over a stream.
pub fn run_unweighted<A: DynamicGraphAlgorithm + ?Sized>(
    alg: &mut A,
    ups: &[Update],
) -> AggregateMetrics {
    let mut agg = AggregateMetrics::default();
    for &u in ups {
        let m = alg.apply(u);
        agg.absorb(&m);
    }
    agg
}

/// Runs a weighted dynamic algorithm over a weighted stream.
pub fn run_weighted<A: WeightedDynamicGraphAlgorithm>(
    alg: &mut A,
    ups: &[WeightedUpdate],
) -> AggregateMetrics {
    let mut agg = AggregateMetrics::default();
    for &u in ups {
        let m = alg.apply(u);
        agg.absorb(&m);
    }
    agg
}

/// One wall-clock-timed batched replay: the model-level batch cost plus the
/// real time the simulator needed and the peak resident-memory proxy.
#[derive(Clone, Debug)]
pub struct TimedRun {
    /// Model-level cost of the whole stream.
    pub batch: BatchMetrics,
    /// Wall-clock seconds for the whole stream.
    pub secs: f64,
    /// Peak of [`DynamicGraphAlgorithm::resident_words`] sampled after
    /// every batch (the RSS proxy — simulated words, not host bytes).
    pub peak_resident_words: usize,
}

impl TimedRun {
    /// Wall-clock updates per second.
    pub fn updates_per_sec(&self) -> f64 {
        per_sec(self.batch.updates as f64, self.secs)
    }

    /// Wall-clock simulator rounds per second.
    pub fn rounds_per_sec(&self) -> f64 {
        per_sec(self.batch.rounds as f64, self.secs)
    }
}

fn per_sec(count: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        count / secs
    } else {
        0.0
    }
}

/// Replays `ups` through `apply_batch` in chunks of `k` (like
/// [`run_stream_batched`]) under a wall-clock timer, sampling the
/// resident-memory proxy after every chunk.
pub fn time_stream_batched<A: DynamicGraphAlgorithm + ?Sized>(
    alg: &mut A,
    ups: &[Update],
    k: usize,
) -> TimedRun {
    let mut total = BatchMetrics::default();
    let mut peak = alg.resident_words();
    let mut secs = 0.0;
    for batch in ups.chunks(k.max(1)) {
        // The memory sampling between chunks walks machine state (O(n)), so
        // it stays outside the timed region.
        let start = std::time::Instant::now();
        total.merge(&alg.apply_batch(batch));
        secs += start.elapsed().as_secs_f64();
        peak = peak.max(alg.resident_words());
    }
    TimedRun {
        batch: total,
        secs,
        peak_resident_words: peak,
    }
}

/// Table-1 style measurement of every algorithm at one size.
pub struct Table1Row {
    /// Row label.
    pub name: &'static str,
    /// Claimed (rounds, machines, communication).
    pub claimed: (&'static str, &'static str, &'static str),
    /// Measured aggregate.
    pub agg: AggregateMetrics,
    /// Batched execution of the same stream (k = 16), for the algorithms
    /// shipping a genuinely batched `apply_batch` override.
    pub batch: Option<BatchMetrics>,
    /// Batched query wave (q = 16) against the post-stream structure, for
    /// the algorithms shipping a genuinely batched `answer_queries`.
    pub query: Option<QueryMetrics>,
}

/// A deterministic pool of uniform connectivity queries over `n` vertices.
pub fn connectivity_query_pool(n: usize, count: usize, seed: u64) -> Vec<Query> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bee_f00d_5eed_cafe);
    (0..count)
        .map(|_| {
            let a = rng.gen_range(0..n as V);
            let b = {
                let b = rng.gen_range(0..n as V - 1);
                if b >= a {
                    b + 1
                } else {
                    b
                }
            };
            match rng.gen_range(0..2) {
                0 => Query::Connected(a, b),
                _ => Query::ComponentOf(a),
            }
        })
        .collect()
}

/// A deterministic pool of uniform matching queries over `n` vertices.
pub fn matching_query_pool(n: usize, count: usize, seed: u64) -> Vec<Query> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bee_f00d_5eed_cafe);
    (0..count)
        .map(|_| match rng.gen_range(0..4) {
            0 => Query::MatchingSize,
            _ => Query::IsMatched(rng.gen_range(0..n as V)),
        })
        .collect()
}

/// Runs the pool through `answer_queries` in waves of `q`, merging the
/// per-wave costs (the query-plane analogue of [`run_stream_batched`]).
/// Also returns the answers so callers can cross-check cells.
pub fn run_queries_batched<A: QueryableAlgorithm + ?Sized>(
    alg: &mut A,
    pool: &[Query],
    q: usize,
) -> (Vec<QueryAnswer>, QueryMetrics) {
    let mut answers = Vec::with_capacity(pool.len());
    let mut total = QueryMetrics::default();
    for wave in pool.chunks(q.max(1)) {
        let (a, m) = alg.answer_queries(wave);
        answers.extend(a);
        total.merge(&m);
    }
    (answers, total)
}

/// One point of a batch-scaling sweep: the same stream executed through
/// `apply_batch` in batches of `k`, against the looped single-update
/// baseline.
#[derive(Clone, Debug)]
pub struct BatchScalingPoint {
    /// Batch size.
    pub k: usize,
    /// Cost of batched execution.
    pub batched: BatchMetrics,
    /// Cost of the looped baseline.
    pub looped: BatchMetrics,
}

impl BatchScalingPoint {
    /// Looped-over-batched amortized-rounds ratio (> 1 means batching wins).
    /// A zero-round batched run against a non-trivial looped run is an
    /// infinite win, not a zero.
    pub fn round_speedup(&self) -> f64 {
        let b = self.batched.amortized_rounds();
        let l = self.looped.amortized_rounds();
        if b == 0.0 {
            return if l > 0.0 { f64::INFINITY } else { 1.0 };
        }
        l / b
    }
}

/// Sweeps batch sizes over one stream: for each `k`, a fresh instance runs
/// the stream through `apply_batch` (chunked into batches of `k`) and a
/// second fresh instance runs the looped baseline.
pub fn batch_scaling_sweep<F>(mut make: F, ups: &[Update], ks: &[usize]) -> Vec<BatchScalingPoint>
where
    F: FnMut() -> Box<dyn DynamicGraphAlgorithm>,
{
    ks.iter()
        .map(|&k| {
            let batched = run_stream_batched(make().as_mut(), ups, k);
            let mut base = make();
            let mut looped = BatchMetrics::default();
            for batch in ups.chunks(k.max(1)) {
                looped.merge(&apply_batch_looped(base.as_mut(), batch));
            }
            BatchScalingPoint { k, batched, looped }
        })
        .collect()
}

/// Measures all eight Table-1 rows at vertex count `n` with `steps` churn
/// updates.
pub fn measure_table1(n: usize, steps: usize, seed: u64) -> Vec<Table1Row> {
    let (params, ups) = canonical_workload(n, steps, seed);
    let m_max = params.m_max;
    let tree_ups = tree_stream(n, steps, seed);
    let wups = streams::with_weights(&ups, 1000, seed);

    // Query measurements run a q=16-wave pool against the post-stream
    // structure (reads are free to reuse the instance: they never mutate).
    let pool_len = 64.min(4 * n);
    let conn_pool = connectivity_query_pool(n, pool_len, seed);
    let match_pool = matching_query_pool(n, pool_len, seed);

    let mut rows = Vec::new();

    let mut mm = DmpcMaximalMatching::new(params);
    let mm_agg = run_unweighted(&mut mm, &ups);
    rows.push(Table1Row {
        name: "Maximal matching",
        claimed: ("O(1)", "O(1)", "O(sqrt N)"),
        agg: mm_agg,
        batch: Some(run_stream_batched(
            &mut DmpcMaximalMatching::new(params),
            &ups,
            16,
        )),
        query: Some(run_queries_batched(&mut mm, &match_pool, 16).1),
    });

    let mut th = DmpcThreeHalves::new(params);
    rows.push(Table1Row {
        name: "3/2-app. matching",
        claimed: ("O(1)", "O(n/sqrt N)", "O(sqrt N)"),
        agg: run_unweighted(&mut th, &ups),
        batch: None,
        query: Some(run_queries_batched(&mut th, &match_pool, 16).1),
    });

    let mut cs = CsMatching::new(n, CsParams::defaults(n, 0.3));
    rows.push(Table1Row {
        name: "(2+eps)-app. matching",
        claimed: ("O(1)", "~O(1)", "~O(1)"),
        agg: run_unweighted(&mut cs, &ups),
        batch: None,
        query: None,
    });

    let mut cc = DmpcConnectivity::new(params);
    let cc_agg = run_unweighted(&mut cc, &tree_ups);
    rows.push(Table1Row {
        name: "Connected comps",
        claimed: ("O(1)", "O(sqrt N)", "O(sqrt N)"),
        agg: cc_agg,
        batch: Some(run_stream_batched(
            &mut DmpcConnectivity::new(params),
            &tree_ups,
            16,
        )),
        query: Some(run_queries_batched(&mut cc, &conn_pool, 16).1),
    });

    let mut mst = DmpcMst::new(params, 0.1);
    let mst_agg = run_weighted(&mut mst, &wups);
    rows.push(Table1Row {
        name: "(1+eps)-MST",
        claimed: ("O(1)", "O(sqrt N)", "O(sqrt N)"),
        agg: mst_agg,
        batch: None,
        query: Some(run_queries_batched(&mut mst, &conn_pool, 16).1),
    });

    let mut rmm = ReducedMatching::new(n, m_max);
    rows.push(Table1Row {
        name: "Reduction: maximal matching",
        claimed: ("O(sqrt m)", "O(1)", "O(1)"),
        agg: run_unweighted(&mut rmm, &ups),
        batch: None,
        query: None,
    });

    let mut rcc = ReducedConnectivity::new(n);
    rows.push(Table1Row {
        name: "Reduction: connected comps",
        claimed: ("~O(1) am.", "O(1)", "O(1)"),
        agg: run_unweighted(&mut rcc, &tree_ups),
        batch: None,
        query: None,
    });

    let mut rmst = ReducedMst::new(n);
    rows.push(Table1Row {
        name: "Reduction: MST",
        claimed: ("O(m) (subst.)", "O(1)", "O(1)"),
        agg: run_weighted(&mut rmst, &wups),
        batch: None,
        query: None,
    });

    rows
}

/// Scaling sweep of one constructor over doubling sizes.
pub fn sweep<F>(mut make: F, sizes: &[usize], steps: usize, seed: u64, tree: bool) -> ScalingSweep
where
    F: FnMut(usize, DmpcParams) -> Box<dyn DynamicGraphAlgorithm>,
{
    let mut sw = ScalingSweep::default();
    for &n in sizes {
        let params = canonical_params(n);
        let mut alg = make(n, params);
        let ups = if tree {
            tree_stream(n, steps, seed)
        } else {
            standard_stream(n, steps, seed)
        };
        let agg = run_unweighted(alg.as_mut(), &ups);
        sw.push(params.input_size(), agg);
    }
    sw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sweep_beats_looped_at_k16() {
        let params = DmpcParams::new(48, 144);
        let ups = standard_stream(48, 96, 5);
        let pts = batch_scaling_sweep(
            || Box::new(DmpcConnectivity::new(params)) as Box<dyn DynamicGraphAlgorithm>,
            &ups,
            &[1, 16],
        );
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.batched.updates, ups.len());
            assert_eq!(p.looped.updates, ups.len());
            assert!(p.batched.clean(), "{} violations", p.batched.violations);
        }
        assert!(
            pts[1].round_speedup() > 1.0,
            "k=16 must amortize: {:?}",
            pts[1]
        );
    }

    #[test]
    fn table1_runs_and_is_clean() {
        let rows = measure_table1(48, 60, 3);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.agg.violations, 0, "{} violated the model", r.name);
            assert!(r.agg.updates > 0);
        }
        // Dynamic rows are O(1) rounds; reduction rows are not.
        assert!(rows[0].agg.max_rounds <= 24);
        assert!(rows[3].agg.max_rounds <= 12);
    }
}
