//! Criterion: one dynamic update vs one static recomputation (experiment
//! E9's wall-clock counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmpc_bench::tree_stream;
use dmpc_connectivity::{DmpcConnectivity, StaticCc};
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_graph::streams::replay;

fn bench_static_vs_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc_maintenance");
    for n in [64usize, 256] {
        let params = DmpcParams::new(n, 3 * n);
        let ups = tree_stream(n, 120, 2);
        group.bench_function(BenchmarkId::new("dynamic_stream", n), |b| {
            b.iter(|| {
                let mut alg = DmpcConnectivity::new(params);
                for &u in ups.iter().take(60) {
                    alg.apply(u);
                }
            })
        });
        let g = replay(n, &ups);
        let edges: Vec<_> = g.edges().collect();
        group.bench_function(BenchmarkId::new("static_recompute_x60", n), |b| {
            let st = StaticCc::new(n, params.storage_machines());
            b.iter(|| {
                for _ in 0..60 {
                    let _ = st.recompute(&edges);
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_static_vs_dynamic
}
criterion_main!(benches);
