//! Criterion: wall-clock cost of one simulated update for every dynamic
//! algorithm (the simulator's own speed; complements the round metrics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmpc_bench::{standard_stream, tree_stream};
use dmpc_connectivity::DmpcConnectivity;
use dmpc_core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc_matching::cs::{CsMatching, CsParams};
use dmpc_matching::{DmpcMaximalMatching, DmpcThreeHalves};
use dmpc_reduction::ReducedConnectivity;

fn bench_updates(c: &mut Criterion) {
    let n = 128;
    let params = DmpcParams::new(n, 3 * n);
    let mut group = c.benchmark_group("per_update");

    group.bench_function(BenchmarkId::new("maximal_matching", n), |b| {
        let ups = standard_stream(n, 200, 1);
        b.iter(|| {
            let mut alg = DmpcMaximalMatching::new(params);
            for &u in ups.iter().take(60) {
                alg.apply(u);
            }
        })
    });

    group.bench_function(BenchmarkId::new("three_halves", n), |b| {
        let ups = standard_stream(n, 200, 1);
        b.iter(|| {
            let mut alg = DmpcThreeHalves::new(params);
            for &u in ups.iter().take(60) {
                alg.apply(u);
            }
        })
    });

    group.bench_function(BenchmarkId::new("cs_matching", n), |b| {
        let ups = standard_stream(n, 200, 1);
        b.iter(|| {
            let mut alg = CsMatching::new(n, CsParams::defaults(n, 0.3));
            for &u in ups.iter().take(60) {
                alg.apply(u);
            }
        })
    });

    group.bench_function(BenchmarkId::new("connectivity", n), |b| {
        let ups = tree_stream(n, 200, 1);
        b.iter(|| {
            let mut alg = DmpcConnectivity::new(params);
            for &u in ups.iter().take(60) {
                alg.apply(u);
            }
        })
    });

    group.bench_function(BenchmarkId::new("reduction_hdt", n), |b| {
        let ups = tree_stream(n, 200, 1);
        b.iter(|| {
            let mut alg = ReducedConnectivity::new(n);
            for &u in ups.iter().take(60) {
                alg.apply(u);
            }
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_updates
}
criterion_main!(benches);
