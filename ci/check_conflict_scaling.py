#!/usr/bin/env python3
"""Conflict-scheduler gate: assert from batch_scaling conflict JSON(s) that
overlapping disjoint conflict groups pays off and never changes results.

Usage: check_conflict_scaling.py <conflict.json> [<conflict.json> ...]
       check_conflict_scaling.py --schema

Per file, depth sweep (16 ops/batch, d in {1,4,16}):
  - conflict and serialized digests are equal at every d (one protocol,
    two schedules, bit-identical states);
  - zero violations everywhere;
  - conflict rounds <= serialized rounds at every d;
  - conflict rounds strictly increase with d at fixed op count — rounds
    scale with the serialization floor, not the op count;
  - op count is identical within each (d, scheduler) pair.

Per file, mixed 50/50 service cells: digests equal per dist, zero
violations, conflict never costs extra rounds. Strict gate when n >= 256:
the clustered (locality-heavy) cell must show serialized/conflict >= 2x.

--schema runs a built-in self-test against synthetic documents (no files
needed), including deliberate regressions that must trip the gate."""

import sys

from gate_common import die, load_json, require


def check(d: dict, path: str) -> list:
    failures = []
    n = require(d, "n", path, int)
    tag = f"{path} (n={n})"

    by_depth = {}
    for i, c in enumerate(require(d, "depth_sweep", path, list)):
        ctx = f"{path}: depth_sweep[{i}]"
        if not isinstance(c, dict):
            die(f"{ctx}: expected an object")
        by_depth.setdefault(require(c, "depth", ctx, int), {})[
            require(c, "scheduler", ctx)
        ] = c
    prev_rounds = 0
    for depth in sorted(by_depth):
        pair = by_depth[depth]
        for sched in ("conflict", "serialized"):
            if sched not in pair:
                die(f"{tag} d={depth}: missing the {sched} cell")
        con, ser = pair["conflict"], pair["serialized"]
        print(
            f"{tag} d={depth}: conflict {con['rounds']} rounds, "
            f"serialized {ser['rounds']}, digest {con['digest']}"
        )
        if con["digest"] != ser["digest"]:
            failures.append(f"{tag} d={depth}: scheduler digests diverge")
        if con["ops"] != ser["ops"]:
            failures.append(f"{tag} d={depth}: op counts differ across schedulers")
        for c in (con, ser):
            if c["violations"] != 0:
                failures.append(
                    f"{tag} d={depth}/{c['scheduler']}: {c['violations']} violations"
                )
        if con["rounds"] > ser["rounds"]:
            failures.append(
                f"{tag} d={depth}: conflict ({con['rounds']}) costs more rounds "
                f"than serialized ({ser['rounds']})"
            )
        if con["rounds"] <= prev_rounds:
            failures.append(
                f"{tag} d={depth}: conflict rounds {con['rounds']} did not grow "
                f"with depth (prev {prev_rounds}) — rounds must track the "
                f"serialization floor, not the op count"
            )
        prev_rounds = con["rounds"]

    by_dist = {}
    for i, c in enumerate(require(d, "mixed", path, list)):
        ctx = f"{path}: mixed[{i}]"
        if not isinstance(c, dict):
            die(f"{ctx}: expected an object")
        by_dist.setdefault(require(c, "dist", ctx), {})[require(c, "scheduler", ctx)] = c
    for dist in sorted(by_dist):
        pair = by_dist[dist]
        for sched in ("conflict", "serialized"):
            if sched not in pair:
                die(f"{tag} mixed/{dist}: missing the {sched} cell")
        con, ser = pair["conflict"], pair["serialized"]
        ratio = ser["rounds"] / max(con["rounds"], 1)
        print(
            f"{tag} mixed/{dist}: conflict {con['rounds']} rounds, "
            f"serialized {ser['rounds']} ({ratio:.2f}x)"
        )
        if con["digest"] != ser["digest"]:
            failures.append(f"{tag} mixed/{dist}: scheduler digests diverge")
        for c in (con, ser):
            if c["violations"] != 0:
                failures.append(
                    f"{tag} mixed/{dist}/{c['scheduler']}: "
                    f"{c['violations']} violations"
                )
        if con["rounds"] > ser["rounds"]:
            failures.append(
                f"{tag} mixed/{dist}: conflict ({con['rounds']}) costs more "
                f"rounds than serialized ({ser['rounds']})"
            )
        if dist == "clustered" and n >= 256 and ser["rounds"] < 2 * con["rounds"]:
            failures.append(
                f"{tag} mixed/clustered: canonical cell ratio {ratio:.2f}x "
                f"below the 2x gate"
            )
    return failures


def self_test() -> int:
    """Synthetic pass + deliberate trips proving the gate fires."""
    import copy

    def cell(sched, depth, rounds, digest=7, ops=16, violations=0):
        return {
            "scheduler": sched,
            "depth": depth,
            "rounds": rounds,
            "digest": digest,
            "ops": ops,
            "violations": violations,
        }

    good = {
        "n": 64,
        "depth_sweep": [
            cell("conflict", 1, 4),
            cell("serialized", 1, 8),
            cell("conflict", 4, 10),
            cell("serialized", 4, 16),
        ],
        "mixed": [
            {
                "scheduler": "conflict",
                "dist": "clustered",
                "rounds": 5,
                "digest": 9,
                "violations": 0,
            },
            {
                "scheduler": "serialized",
                "dist": "clustered",
                "rounds": 12,
                "digest": 9,
                "violations": 0,
            },
        ],
    }
    diverged = copy.deepcopy(good)
    diverged["depth_sweep"][0]["digest"] = 8
    flat = copy.deepcopy(good)
    flat["depth_sweep"][2]["rounds"] = 4
    weak = copy.deepcopy(good)
    weak["n"] = 256
    weak["mixed"][1]["rounds"] = 6
    for name, doc, want_failure in [
        ("pass", good, False),
        ("digest-divergence trip", diverged, True),
        ("flat-depth trip", flat, True),
        ("canonical-ratio trip", weak, True),
    ]:
        failures = check(doc, "<self-test>")
        ok = bool(failures) == want_failure
        print(f"self-test {name}: {'ok' if ok else 'FAILED'}")
        if not ok:
            die(f"self-test '{name}' expected failure={want_failure}, got {failures}")
    print("schema self-test passed")
    return 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--schema":
        return self_test()
    if len(sys.argv) < 2:
        die("usage: check_conflict_scaling.py <conflict.json> [...] | --schema")
    failures = []
    for path in sys.argv[1:]:
        failures.extend(check(load_json(path), path))
    if failures:
        print("\nconflict-scaling gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("conflict-scaling gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
