#!/usr/bin/env python3
"""Conflict-scheduler gate: assert from batch_scaling conflict JSON(s) that
overlapping disjoint conflict groups pays off and never changes results.

Usage: check_conflict_scaling.py <conflict.json> [<conflict.json> ...]

Per file, depth sweep (16 ops/batch, d in {1,4,16}):
  - conflict and serialized digests are equal at every d (one protocol,
    two schedules, bit-identical states);
  - zero violations everywhere;
  - conflict rounds <= serialized rounds at every d;
  - conflict rounds strictly increase with d at fixed op count — rounds
    scale with the serialization floor, not the op count;
  - op count is identical within each (d, scheduler) pair.

Per file, mixed 50/50 service cells: digests equal per dist, zero
violations, conflict never costs extra rounds. Strict gate when n >= 256:
the clustered (locality-heavy) cell must show serialized/conflict >= 2x.
"""

import json
import sys


def check(path: str) -> list[str]:
    d = json.load(open(path))
    failures = []
    tag = f"{path} (n={d['n']})"

    by_depth = {}
    for c in d["depth_sweep"]:
        by_depth.setdefault(c["depth"], {})[c["scheduler"]] = c
    prev_rounds = 0
    for depth in sorted(by_depth):
        pair = by_depth[depth]
        con, ser = pair["conflict"], pair["serialized"]
        print(
            f"{tag} d={depth}: conflict {con['rounds']} rounds, "
            f"serialized {ser['rounds']}, digest {con['digest']}"
        )
        if con["digest"] != ser["digest"]:
            failures.append(f"{tag} d={depth}: scheduler digests diverge")
        if con["ops"] != ser["ops"]:
            failures.append(f"{tag} d={depth}: op counts differ across schedulers")
        for c in (con, ser):
            if c["violations"] != 0:
                failures.append(
                    f"{tag} d={depth}/{c['scheduler']}: {c['violations']} violations"
                )
        if con["rounds"] > ser["rounds"]:
            failures.append(
                f"{tag} d={depth}: conflict ({con['rounds']}) costs more rounds "
                f"than serialized ({ser['rounds']})"
            )
        if con["rounds"] <= prev_rounds:
            failures.append(
                f"{tag} d={depth}: conflict rounds {con['rounds']} did not grow "
                f"with depth (prev {prev_rounds}) — rounds must track the "
                f"serialization floor, not the op count"
            )
        prev_rounds = con["rounds"]

    by_dist = {}
    for c in d["mixed"]:
        by_dist.setdefault(c["dist"], {})[c["scheduler"]] = c
    for dist in sorted(by_dist):
        pair = by_dist[dist]
        con, ser = pair["conflict"], pair["serialized"]
        ratio = ser["rounds"] / max(con["rounds"], 1)
        print(
            f"{tag} mixed/{dist}: conflict {con['rounds']} rounds, "
            f"serialized {ser['rounds']} ({ratio:.2f}x)"
        )
        if con["digest"] != ser["digest"]:
            failures.append(f"{tag} mixed/{dist}: scheduler digests diverge")
        for c in (con, ser):
            if c["violations"] != 0:
                failures.append(
                    f"{tag} mixed/{dist}/{c['scheduler']}: "
                    f"{c['violations']} violations"
                )
        if con["rounds"] > ser["rounds"]:
            failures.append(
                f"{tag} mixed/{dist}: conflict ({con['rounds']}) costs more "
                f"rounds than serialized ({ser['rounds']})"
            )
        if dist == "clustered" and d["n"] >= 256 and ser["rounds"] < 2 * con["rounds"]:
            failures.append(
                f"{tag} mixed/clustered: canonical cell ratio {ratio:.2f}x "
                f"below the 2x gate"
            )
    return failures


def main() -> int:
    failures = []
    for path in sys.argv[1:]:
        failures.extend(check(path))
    if failures:
        print("\nconflict-scaling gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("conflict-scaling gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
