#!/usr/bin/env python3
"""Query-plane smoke gate: assert from a query_scaling JSON that batched
waves beat the looped baseline and that no cell violated the model.

Usage: check_query_scaling.py <query_scaling.json>
       check_query_scaling.py --schema

Checks, per algorithm: the q=256 cell's amortized rounds/query is strictly
below the q=1 (looped) cell's and at most 3; every sweep and mixed cell
reports violations == 0.

--schema runs a built-in self-test against synthetic documents (no files
needed), including deliberate regressions that must trip the gate."""

import sys

from gate_common import die, load_json, require


def check(d: dict, path: str) -> list:
    cells = {}
    for i, c in enumerate(require(d, "cells", path, list)):
        ctx = f"{path}: cells[{i}]"
        if not isinstance(c, dict):
            die(f"{ctx}: expected an object")
        cells[(require(c, "alg", ctx), require(c, "q", ctx, int))] = c
    if not cells:
        die(f"{path}: no sweep cells emitted")
    algs = {alg for alg, _ in cells}
    failures = []
    for alg in sorted(algs):
        for q in (1, 256):
            if (alg, q) not in cells:
                die(f"{path}: {alg} is missing the q={q} cell")
        looped = cells[(alg, 1)]
        batched = cells[(alg, 256)]
        ctx = f"{path}: {alg}"
        lr = require(looped, "amortized_rounds", ctx, (int, float))
        br = require(batched, "amortized_rounds", ctx, (int, float))
        print(f"{alg}: looped {lr} rounds/query, batched (q=256) {br}")
        if not br < lr:
            failures.append(f"{alg}: batched ({br}) does not strictly beat looped ({lr})")
        if not br <= 3.0:
            failures.append(f"{alg}: batched amortized rounds {br} above 3")
    for (alg, q), c in cells.items():
        if require(c, "violations", f"{path}: {alg}/q={q}", int) != 0:
            failures.append(f"sweep cell {alg}/q={q}: {c['violations']} violations")
    for i, m in enumerate(d.get("mixed", [])):
        ctx = f"{path}: mixed[{i}]"
        if require(m, "violations", ctx, int) != 0:
            failures.append(
                f"mixed cell {m.get('alg')}/{m.get('read_pct')}%/{m.get('dist')}: "
                f"{m['violations']} violations"
            )
    return failures


def self_test() -> int:
    """Synthetic pass + deliberate trips proving the gate fires."""
    import copy

    good = {
        "cells": [
            {"alg": "connectivity", "q": 1, "amortized_rounds": 2.0, "violations": 0},
            {"alg": "connectivity", "q": 256, "amortized_rounds": 1.0, "violations": 0},
        ],
        "mixed": [
            {"alg": "connectivity", "read_pct": 50, "dist": "uniform", "violations": 0}
        ],
    }
    slow = copy.deepcopy(good)
    slow["cells"][1]["amortized_rounds"] = 2.5
    viol = copy.deepcopy(good)
    viol["mixed"][0]["violations"] = 1
    for name, doc, want_failure in [
        ("pass", good, False),
        ("batched-not-beating trip", slow, True),
        ("mixed-violation trip", viol, True),
    ]:
        failures = check(doc, "<self-test>")
        ok = bool(failures) == want_failure
        print(f"self-test {name}: {'ok' if ok else 'FAILED'}")
        if not ok:
            die(f"self-test '{name}' expected failure={want_failure}, got {failures}")
    print("schema self-test passed")
    return 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--schema":
        return self_test()
    if len(sys.argv) < 2:
        die("usage: check_query_scaling.py <query_scaling.json> | --schema")
    path = sys.argv[1]
    failures = check(load_json(path), path)
    if failures:
        print("\nquery smoke FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("query smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
