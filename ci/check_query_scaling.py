#!/usr/bin/env python3
"""Query-plane smoke gate: assert from a query_scaling JSON that batched
waves beat the looped baseline and that no cell violated the model.

Usage: check_query_scaling.py <query_scaling.json>

Checks, per algorithm: the q=256 cell's amortized rounds/query is strictly
below the q=1 (looped) cell's and at most 3; every sweep and mixed cell
reports violations == 0."""

import json
import sys


def main() -> int:
    d = json.load(open(sys.argv[1]))
    cells = {(c["alg"], c["q"]): c for c in d["cells"]}
    assert cells, "no sweep cells emitted"
    algs = {alg for alg, _ in cells}
    failures = []
    for alg in sorted(algs):
        looped = cells[(alg, 1)]
        batched = cells[(alg, 256)]
        lr, br = looped["amortized_rounds"], batched["amortized_rounds"]
        print(f"{alg}: looped {lr} rounds/query, batched (q=256) {br}")
        if not br < lr:
            failures.append(f"{alg}: batched ({br}) does not strictly beat looped ({lr})")
        if not br <= 3.0:
            failures.append(f"{alg}: batched amortized rounds {br} above 3")
    for c in d["cells"]:
        if c["violations"] != 0:
            failures.append(f"sweep cell {c['alg']}/q={c['q']}: {c['violations']} violations")
    for m in d.get("mixed", []):
        if m["violations"] != 0:
            failures.append(
                f"mixed cell {m['alg']}/{m['read_pct']}%/{m['dist']}: "
                f"{m['violations']} violations"
            )
    if failures:
        print("\nquery smoke FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("query smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
