#!/usr/bin/env python3
"""Perf-regression gate: compare a throughput-smoke JSON against the
committed floors in ci/perf_floors.json.

Usage: check_perf_floor.py <throughput_smoke.json> [perf_floors.json]

The floors are core-count fingerprinted (see the comment field in the
floors file): an exact host_cores match gates tightly, anything else uses
the conservative 'default' floors. Exits non-zero when any gated config
falls below floor/tolerance."""

import json
import sys


def die(msg: str):
    print(f"perf gate ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path: str) -> dict:
    """Loads a JSON object, failing loudly (not with a traceback) on a
    missing file, malformed JSON, or a non-object top level."""
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        die(f"{path}: file not found (did the bench run fail silently?)")
    except json.JSONDecodeError as e:
        die(f"{path}: malformed JSON ({e})")
    if not isinstance(data, dict):
        die(f"{path}: expected a JSON object, got {type(data).__name__}")
    return data


def require(obj: dict, key: str, ctx: str, typ=None):
    """Fetches obj[key], failing loudly when absent or of the wrong type."""
    if key not in obj:
        die(f"{ctx}: missing required key '{key}'")
    val = obj[key]
    if typ is not None and not isinstance(val, typ):
        die(f"{ctx}: key '{key}' should be {typ}, got {type(val).__name__}")
    return val


def main() -> int:
    if len(sys.argv) < 2:
        die("usage: check_perf_floor.py <throughput_smoke.json> [perf_floors.json]")
    smoke_path = sys.argv[1]
    floors_path = sys.argv[2] if len(sys.argv) > 2 else "ci/perf_floors.json"
    smoke = load_json(smoke_path)
    spec = load_json(floors_path)
    tolerance = require(spec, "tolerance", floors_path, (int, float))
    if tolerance <= 0:
        die(f"{floors_path}: tolerance must be positive, got {tolerance}")
    hosts = require(spec, "hosts", floors_path, dict)
    if "default" not in hosts:
        die(f"{floors_path}: hosts table has no 'default' profile")
    cores = str(smoke.get("host_cores", 0))
    floors = hosts.get(cores)
    profile = cores
    if floors is None:
        floors = hosts["default"]
        profile = "default"
    if not isinstance(floors, dict) or not floors:
        die(f"{floors_path}: floor profile '{profile}' is empty or not an object")
    print(f"perf gate: host_cores={cores}, floor profile '{profile}', tolerance {tolerance}x")

    configs = require(smoke, "configs", smoke_path, list)
    measured = {}
    for i, c in enumerate(configs):
        ctx = f"{smoke_path}: configs[{i}]"
        if not isinstance(c, dict):
            die(f"{ctx}: expected an object")
        key = (
            f"{require(c, 'alg', ctx)}/{require(c, 'backend', ctx)}/{require(c, 'k', ctx)}"
        )
        current = require(c, "current", ctx, dict)
        ups = require(current, "updates_per_sec", ctx, (int, float))
        measured[key] = ups
    failures = []
    for key, floor in floors.items():
        if not isinstance(floor, (int, float)) or floor <= 0:
            die(f"{floors_path}: floor '{key}' must be a positive number, got {floor!r}")
        got = measured.get(key)
        if got is None:
            failures.append(f"{key}: missing from the smoke run")
            continue
        limit = floor / tolerance
        verdict = "ok" if got >= limit else "REGRESSION"
        print(f"  {key}: {got:.0f} updates/s (floor {floor}, limit {limit:.0f}) {verdict}")
        if got < limit:
            failures.append(f"{key}: {got:.0f} < {limit:.0f} (floor {floor} / {tolerance})")
    if failures:
        print("\nperf gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
