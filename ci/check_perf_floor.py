#!/usr/bin/env python3
"""Perf-regression gate: compare a bench JSON against the committed floors
in ci/perf_floors.json.

Usage: check_perf_floor.py <bench.json> [perf_floors.json]
       check_perf_floor.py --schema

Two bench schemas are accepted, keyed on the document's "bench" field:

* "throughput" (PR3-era): a flat "configs" list of alg/backend/k cells.
  Floors live under the top-level "hosts" table, keyed "alg/backend/k".
* "large_scale" (PR7): a "cells" list of multi-n trajectory rows plus a
  "canonical_comparison" list of layout speedups. Floors live under the
  "pr7" section: "hosts" keyed "alg/n", per-cell "resident_ceiling"
  (peak_resident_words upper bounds, fingerprint-independent), and
  "min_canonical_speedup" (per-alg SoA-vs-pre-PR floors, gated only when
  the run is canonical). Every cell must additionally report zero model
  violations regardless of floors.

Floors are core-count fingerprinted (see the comment field in the floors
file): an exact host_cores match gates tightly, anything else uses the
conservative 'default' floors. Exits non-zero when any gated quantity
falls below floor/tolerance (or above a ceiling).

--schema runs a built-in self-test of both parsers against synthetic
documents (no files needed) and exits 0 on success; CI invokes it so a
schema drift in this script fails loudly even when the bench JSONs are
healthy."""

import sys

from gate_common import die, load_json, require


def pick_host_floors(hosts: dict, cores: str, ctx: str):
    """Exact host_cores fingerprint match, else the 'default' profile."""
    if "default" not in hosts:
        die(f"{ctx}: hosts table has no 'default' profile")
    floors = hosts.get(cores)
    profile = cores
    if floors is None:
        floors = hosts["default"]
        profile = "default"
    if not isinstance(floors, dict) or not floors:
        die(f"{ctx}: floor profile '{profile}' is empty or not an object")
    return floors, profile


def gate_floors(measured: dict, floors: dict, tolerance: float, ctx: str):
    """Shared floor arithmetic: every floor key must be measured and above
    floor/tolerance. Returns the failure list."""
    failures = []
    for key, floor in floors.items():
        if not isinstance(floor, (int, float)) or floor <= 0:
            die(f"{ctx}: floor '{key}' must be a positive number, got {floor!r}")
        got = measured.get(key)
        if got is None:
            failures.append(f"{key}: missing from the bench run")
            continue
        limit = floor / tolerance
        verdict = "ok" if got >= limit else "REGRESSION"
        print(f"  {key}: {got:.0f} updates/s (floor {floor}, limit {limit:.0f}) {verdict}")
        if got < limit:
            failures.append(f"{key}: {got:.0f} < {limit:.0f} (floor {floor} / {tolerance})")
    return failures


def check_throughput(smoke: dict, spec: dict, smoke_path: str, floors_path: str):
    """PR3-era schema: flat alg/backend/k configs vs the 'hosts' table."""
    tolerance = require(spec, "tolerance", floors_path, (int, float))
    if tolerance <= 0:
        die(f"{floors_path}: tolerance must be positive, got {tolerance}")
    hosts = require(spec, "hosts", floors_path, dict)
    cores = str(smoke.get("host_cores", 0))
    floors, profile = pick_host_floors(hosts, cores, floors_path)
    print(f"perf gate: host_cores={cores}, floor profile '{profile}', tolerance {tolerance}x")

    configs = require(smoke, "configs", smoke_path, list)
    measured = {}
    for i, c in enumerate(configs):
        ctx = f"{smoke_path}: configs[{i}]"
        if not isinstance(c, dict):
            die(f"{ctx}: expected an object")
        key = (
            f"{require(c, 'alg', ctx)}/{require(c, 'backend', ctx)}/{require(c, 'k', ctx)}"
        )
        current = require(c, "current", ctx, dict)
        ups = require(current, "updates_per_sec", ctx, (int, float))
        measured[key] = ups
    return gate_floors(measured, floors, tolerance, floors_path)


def check_large_scale(smoke: dict, spec: dict, smoke_path: str, floors_path: str):
    """PR7 schema: multi-n trajectory cells + the canonical layout
    comparison, gated against the floors file's 'pr7' section."""
    pr7 = require(spec, "pr7", floors_path, dict)
    ctx7 = f"{floors_path}: pr7"
    tolerance = require(pr7, "tolerance", ctx7, (int, float))
    if tolerance <= 0:
        die(f"{ctx7}: tolerance must be positive, got {tolerance}")
    hosts = require(pr7, "hosts", ctx7, dict)
    ceilings = pr7.get("resident_ceiling", {})
    if not isinstance(ceilings, dict):
        die(f"{ctx7}: resident_ceiling must be an object")
    min_speedup = pr7.get("min_canonical_speedup", {})
    if not isinstance(min_speedup, dict):
        die(f"{ctx7}: min_canonical_speedup must be an object")
    cores = str(smoke.get("host_cores", 0))
    floors, profile = pick_host_floors(hosts, cores, ctx7)
    print(f"perf gate: host_cores={cores}, floor profile '{profile}', tolerance {tolerance}x")

    failures = []
    cells = require(smoke, "cells", smoke_path, list)
    measured = {}
    for i, c in enumerate(cells):
        ctx = f"{smoke_path}: cells[{i}]"
        if not isinstance(c, dict):
            die(f"{ctx}: expected an object")
        key = f"{require(c, 'alg', ctx)}/{require(c, 'n', ctx)}"
        current = require(c, "current", ctx, dict)
        measured[key] = require(current, "updates_per_sec", ctx, (int, float))
        # Model violations gate every cell, floors or not.
        viol = require(current, "violations", ctx, int)
        if viol != 0:
            failures.append(f"{key}: {viol} model violations")
        resident = require(current, "peak_resident_words", ctx, int)
        ceiling = ceilings.get(key)
        if ceiling is not None:
            verdict = "ok" if resident <= ceiling else "OVER CEILING"
            print(f"  {key}: resident {resident} words (ceiling {ceiling}) {verdict}")
            if resident > ceiling:
                failures.append(f"{key}: resident {resident} > ceiling {ceiling}")
    failures += gate_floors(measured, floors, tolerance, ctx7)

    # The canonical SoA-vs-pre-PR speedups gate only on the capture host
    # (the fingerprint guard): elsewhere the ratio reflects hardware.
    if smoke.get("canonical") is True:
        comparison = require(smoke, "canonical_comparison", smoke_path, list)
        best = {}
        for i, c in enumerate(comparison):
            ctx = f"{smoke_path}: canonical_comparison[{i}]"
            if not isinstance(c, dict):
                die(f"{ctx}: expected an object")
            alg = require(c, "alg", ctx)
            if require(c, "digests_match", ctx) is not True:
                failures.append(f"canonical {alg}/k={c.get('k')}: layout digests diverged")
            s = c.get("speedup_vs_pre_pr")
            if isinstance(s, (int, float)):
                best[alg] = max(best.get(alg, 0.0), s)
        for alg, floor in min_speedup.items():
            got = best.get(alg)
            if got is None:
                failures.append(f"canonical {alg}: no pre-PR speedup recorded")
                continue
            verdict = "ok" if got >= floor else "REGRESSION"
            print(f"  canonical {alg}: {got:.2f}x vs pre-PR layout (floor {floor}x) {verdict}")
            if got < floor:
                failures.append(f"canonical {alg}: {got:.2f}x < floor {floor}x")
    else:
        print("  canonical comparison skipped (host fingerprint differs)")
    return failures


def self_test() -> int:
    """Exercises both schema paths against synthetic documents, including
    one deliberate regression per path to prove the gate actually trips."""
    floors = {
        "tolerance": 2.0,
        "hosts": {"default": {"connectivity/serial/1": 1000}},
        "pr7": {
            "tolerance": 2.0,
            "hosts": {"default": {"connectivity/16384": 1000}},
            "resident_ceiling": {"connectivity/16384": 500000},
            "min_canonical_speedup": {"connectivity": 1.5},
        },
    }
    pr3 = {
        "bench": "throughput",
        "host_cores": 64,
        "configs": [
            {
                "alg": "connectivity",
                "backend": "serial",
                "k": 1,
                "current": {"updates_per_sec": 900.0},
            }
        ],
    }
    pr7 = {
        "bench": "large_scale",
        "host_cores": 64,
        "canonical": True,
        "canonical_comparison": [
            {
                "alg": "connectivity",
                "k": 1,
                "digests_match": True,
                "speedup_vs_pre_pr": 1.7,
            }
        ],
        "cells": [
            {
                "alg": "connectivity",
                "n": 16384,
                "current": {
                    "updates_per_sec": 900.0,
                    "violations": 0,
                    "peak_resident_words": 400000,
                },
            }
        ],
    }
    cases = [
        ("pr3 pass", check_throughput, pr3, 0),
        ("pr7 pass", check_large_scale, pr7, 0),
    ]
    # Regressions that must trip each gate.
    import copy

    pr3_slow = copy.deepcopy(pr3)
    pr3_slow["configs"][0]["current"]["updates_per_sec"] = 100.0
    cases.append(("pr3 floor trip", check_throughput, pr3_slow, 1))
    pr7_viol = copy.deepcopy(pr7)
    pr7_viol["cells"][0]["current"]["violations"] = 3
    cases.append(("pr7 violation trip", check_large_scale, pr7_viol, 1))
    pr7_fat = copy.deepcopy(pr7)
    pr7_fat["cells"][0]["current"]["peak_resident_words"] = 600000
    cases.append(("pr7 ceiling trip", check_large_scale, pr7_fat, 1))
    pr7_slowdown = copy.deepcopy(pr7)
    pr7_slowdown["canonical_comparison"][0]["speedup_vs_pre_pr"] = 1.1
    cases.append(("pr7 speedup trip", check_large_scale, pr7_slowdown, 1))

    for name, fn, doc, want_failures in cases:
        failures = fn(doc, floors, "<self-test>", "<self-test-floors>")
        ok = (len(failures) > 0) == (want_failures > 0)
        print(f"self-test {name}: {'ok' if ok else 'FAILED'}")
        if not ok:
            die(f"self-test '{name}' expected failures={want_failures}, got {failures}")
    print("schema self-test passed")
    return 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--schema":
        return self_test()
    if len(sys.argv) < 2:
        die("usage: check_perf_floor.py <bench.json> [perf_floors.json] | --schema")
    smoke_path = sys.argv[1]
    floors_path = sys.argv[2] if len(sys.argv) > 2 else "ci/perf_floors.json"
    smoke = load_json(smoke_path)
    spec = load_json(floors_path)
    kind = smoke.get("bench", "throughput")
    if kind == "large_scale":
        failures = check_large_scale(smoke, spec, smoke_path, floors_path)
    elif kind == "throughput":
        failures = check_throughput(smoke, spec, smoke_path, floors_path)
    else:
        die(f"{smoke_path}: unknown bench kind {kind!r}")
    if failures:
        print("\nperf gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
