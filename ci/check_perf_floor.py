#!/usr/bin/env python3
"""Perf-regression gate: compare a throughput-smoke JSON against the
committed floors in ci/perf_floors.json.

Usage: check_perf_floor.py <throughput_smoke.json> [perf_floors.json]

The floors are core-count fingerprinted (see the comment field in the
floors file): an exact host_cores match gates tightly, anything else uses
the conservative 'default' floors. Exits non-zero when any gated config
falls below floor/tolerance."""

import json
import sys


def main() -> int:
    smoke_path = sys.argv[1]
    floors_path = sys.argv[2] if len(sys.argv) > 2 else "ci/perf_floors.json"
    smoke = json.load(open(smoke_path))
    spec = json.load(open(floors_path))
    tolerance = spec["tolerance"]
    cores = str(smoke.get("host_cores", 0))
    floors = spec["hosts"].get(cores)
    profile = cores
    if floors is None:
        floors = spec["hosts"]["default"]
        profile = "default"
    print(f"perf gate: host_cores={cores}, floor profile '{profile}', tolerance {tolerance}x")

    measured = {
        f"{c['alg']}/{c['backend']}/{c['k']}": c["current"]["updates_per_sec"]
        for c in smoke["configs"]
    }
    failures = []
    for key, floor in floors.items():
        got = measured.get(key)
        if got is None:
            failures.append(f"{key}: missing from the smoke run")
            continue
        limit = floor / tolerance
        verdict = "ok" if got >= limit else "REGRESSION"
        print(f"  {key}: {got:.0f} updates/s (floor {floor}, limit {limit:.0f}) {verdict}")
        if got < limit:
            failures.append(f"{key}: {got:.0f} < {limit:.0f} (floor {floor} / {tolerance})")
    if failures:
        print("\nperf gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
