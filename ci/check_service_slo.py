#!/usr/bin/env python3
"""Service-latency SLO gate: assert from service_scaling JSON(s) that the
continuous-service front-end is correct, accounted, and within its latency
budget.

Usage: check_service_slo.py <service.json> [<service.json> ...]
       check_service_slo.py --schema

Per file (CI passes both the fresh smoke run and the committed canonical
BENCH_PR10.json):
  - every cell reports zero model violations and an online digest equal to
    its offline window replay (digest_match) — the numbers describe a
    service that computes the same states as the batch plane;
  - admission accounting balances in every cell:
    arrived == admitted + shed;
  - backpressure is exercised and visible: at least one shed cell actually
    shed (and recorded it), at least one block cell parked arrivals and
    lost nothing;
  - amortization: within every (alg, rate, read_pct) steady-arrival group,
    the windowed policy strictly beats per-op admission on amortized
    rounds/op;
  - latency SLO (canonical files only, n >= 256): every no-backpressure
    cell must have a p99 ceiling in ci/perf_floors.json under
    "pr10"."p99_rounds_ceiling" (keyed alg/process/rate/read_pct/policy),
    and max(write_p99_rounds, read_p99_rounds) must stay at or under it.
    Rounds are simulated and seeded, so the ceilings are host-independent;
    wall-clock latency is reported but never gated.

--schema runs a built-in self-test against synthetic documents (no files
needed), including deliberate regressions that must trip the gate."""

import sys

from gate_common import die, load_json, require

FLOORS_PATH = "ci/perf_floors.json"
CANONICAL_N = 256


def cell_key(c: dict) -> str:
    return (
        f"{c['alg']}/{c['process']}/{c['rate']:g}/{c['read_pct']}/{c['policy']}"
    )


def check(d: dict, path: str, pr10: dict) -> list:
    failures = []
    n = require(d, "n", path, int)
    tag = f"{path} (n={n})"
    cells = require(d, "cells", path, list)
    if not cells:
        die(f"{tag}: no cells emitted")

    groups = {}
    saw_shed = saw_block = False
    ceilings = require(pr10, "p99_rounds_ceiling", f"{FLOORS_PATH}: pr10", dict)
    for i, c in enumerate(cells):
        ctx = f"{path}: cells[{i}]"
        if not isinstance(c, dict):
            die(f"{ctx}: expected an object")
        for k in ("alg", "process", "policy", "backpressure"):
            require(c, k, ctx, str)
        for k in ("arrived", "admitted", "shed", "violations", "read_pct"):
            require(c, k, ctx, int)
        require(c, "rate", ctx, (int, float))
        key = cell_key(c)

        if c["violations"] != 0:
            failures.append(f"{tag} {key}: {c['violations']} model violations")
        if require(c, "digest_match", ctx) is not True:
            failures.append(f"{tag} {key}: online digest != offline window replay")
        if c["arrived"] != c["admitted"] + c["shed"]:
            failures.append(
                f"{tag} {key}: admission accounting broken "
                f"({c['arrived']} arrived != {c['admitted']} admitted + {c['shed']} shed)"
            )

        bp = c["backpressure"]
        if bp == "shed":
            saw_shed = True
            if c["shed"] == 0:
                failures.append(f"{tag} {key}: shed cell shed nothing")
        elif bp == "block":
            saw_block = True
            if c["shed"] != 0 or c["admitted"] != c["arrived"]:
                failures.append(f"{tag} {key}: block cell lost ops")
            if require(c, "peak_parked", ctx, int) == 0:
                failures.append(f"{tag} {key}: block cell never parked")
        elif bp == "none":
            if c["process"] == "steady":
                groups.setdefault((c["alg"], c["rate"], c["read_pct"]), {})[
                    c["policy"]
                ] = c
            if n >= CANONICAL_N:
                w99 = require(c, "write_p99_rounds", ctx, (int, float))
                r99 = require(c, "read_p99_rounds", ctx, (int, float))
                p99 = max(w99, r99)
                ceiling = ceilings.get(key)
                if ceiling is None:
                    failures.append(
                        f"{tag} {key}: canonical cell has no p99 ceiling in "
                        f"{FLOORS_PATH} (add one from the fresh run + headroom)"
                    )
                    continue
                verdict = "ok" if p99 <= ceiling else "OVER SLO"
                print(f"  {key}: p99 {p99:g} rounds (ceiling {ceiling}) {verdict}")
                if p99 > ceiling:
                    failures.append(
                        f"{tag} {key}: p99 {p99:g} rounds over the {ceiling} ceiling"
                    )
        else:
            die(f"{ctx}: unknown backpressure mode {bp!r}")

    if not saw_shed:
        failures.append(f"{tag}: no shed backpressure cell in the sweep")
    if not saw_block:
        failures.append(f"{tag}: no block backpressure cell in the sweep")

    for (alg, rate, pct), pair in sorted(groups.items()):
        for policy in ("per_op", "windowed"):
            if policy not in pair:
                die(f"{tag} {alg}/steady/{rate:g}/{pct}: missing the {policy} cell")
        po = require(
            pair["per_op"], "amortized_rounds_per_op", tag, (int, float)
        )
        wi = require(
            pair["windowed"], "amortized_rounds_per_op", tag, (int, float)
        )
        print(
            f"  {alg} rate={rate:g} reads={pct}%: per-op {po:.3f} rounds/op, "
            f"windowed {wi:.3f}"
        )
        if not wi < po:
            failures.append(
                f"{tag} {alg}/steady/{rate:g}/{pct}: windowed ({wi}) does not "
                f"beat per-op ({po}) on amortized rounds/op"
            )
    return failures


def self_test() -> int:
    """Synthetic pass + deliberate trips proving the gate fires."""
    import copy

    def cell(policy, amort, bp="none", **kw):
        c = {
            "alg": "connectivity",
            "process": "steady",
            "rate": 2.0,
            "read_pct": 50,
            "policy": policy,
            "backpressure": bp,
            "arrived": 100,
            "admitted": 100,
            "shed": 0,
            "violations": 0,
            "digest_match": True,
            "amortized_rounds_per_op": amort,
            "write_p99_rounds": 20.0,
            "read_p99_rounds": 18.0,
            "peak_parked": 0,
        }
        c.update(kw)
        return c

    pr10 = {"p99_rounds_ceiling": {"connectivity/steady/2/50/per_op": 30,
                                   "connectivity/steady/2/50/windowed": 101}}
    good = {
        "n": 256,
        "cells": [
            cell("per_op", 4.6),
            cell("windowed", 2.6, write_p99_rounds=67.0, read_p99_rounds=67.0),
            cell("windowed", 0.3, bp="shed", rate=16.0, read_pct=100,
                 arrived=100, admitted=60, shed=40),
            cell("windowed", 2.8, bp="block", rate=16.0, peak_parked=30),
        ],
    }
    diverged = copy.deepcopy(good)
    diverged["cells"][0]["digest_match"] = False
    unbalanced = copy.deepcopy(good)
    unbalanced["cells"][2]["shed"] = 10
    no_win = copy.deepcopy(good)
    no_win["cells"][1]["amortized_rounds_per_op"] = 5.0
    over = copy.deepcopy(good)
    over["cells"][1]["write_p99_rounds"] = 150.0
    unkeyed = copy.deepcopy(good)
    unkeyed["cells"][1]["rate"] = 3.0
    unkeyed["cells"][0]["rate"] = 3.0
    for name, doc, want_failure in [
        ("pass", good, False),
        ("digest trip", diverged, True),
        ("accounting trip", unbalanced, True),
        ("amortization trip", no_win, True),
        ("slo trip", over, True),
        ("missing-ceiling trip", unkeyed, True),
    ]:
        failures = check(doc, "<self-test>", pr10)
        ok = bool(failures) == want_failure
        print(f"self-test {name}: {'ok' if ok else 'FAILED'}")
        if not ok:
            die(f"self-test '{name}' expected failure={want_failure}, got {failures}")
    print("schema self-test passed")
    return 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--schema":
        return self_test()
    if len(sys.argv) < 2:
        die("usage: check_service_slo.py <service.json> [...] | --schema")
    spec = load_json(FLOORS_PATH)
    pr10 = require(spec, "pr10", FLOORS_PATH, dict)
    failures = []
    for path in sys.argv[1:]:
        failures.extend(check(load_json(path), path, pr10))
    if failures:
        print("\nservice SLO gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("service SLO gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
