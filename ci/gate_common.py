"""Shared plumbing for the CI bench gates.

Every gate script loads one or more bench JSONs and fails loudly — exit 2
with a one-line reason on stderr, never a traceback — when a file is
missing, malformed, or schema-drifted. That boilerplate lived copy-pasted
in each gate; it now lives here so a fix (or a new failure mode) lands in
every gate at once.

Conventions:

* exit 2 = the gate could not run (missing/was-never-written/mis-shaped
  input) — distinct from exit 1 = the gate ran and the numbers failed.
* ``require`` is the schema check: every key a gate reads from a bench
  document goes through it, so a renamed field fails with the document
  path and key, not a KeyError three frames deep.
"""

import json
import sys


def die(msg: str):
    """Exit 2 with a one-line reason: the gate could not run."""
    print(f"gate ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path: str) -> dict:
    """Loads a JSON object, failing loudly (not with a traceback) on a
    missing file, malformed JSON, or a non-object top level."""
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        die(f"{path}: file not found (did the bench run fail silently?)")
    except json.JSONDecodeError as e:
        die(f"{path}: malformed JSON ({e})")
    if not isinstance(data, dict):
        die(f"{path}: expected a JSON object, got {type(data).__name__}")
    return data


def require(obj: dict, key: str, ctx: str, typ=None):
    """Fetches obj[key], failing loudly when absent or of the wrong type."""
    if key not in obj:
        die(f"{ctx}: missing required key '{key}'")
    val = obj[key]
    if typ is not None and not isinstance(val, typ):
        die(f"{ctx}: key '{key}' should be {typ}, got {type(val).__name__}")
    return val
