//! # dmpc — Dynamic Algorithms for the Massively Parallel Computation Model
//!
//! A from-scratch Rust reproduction of *"Dynamic Algorithms for the
//! Massively Parallel Computation Model"* (Italiano, Lattanzi, Mirrokni,
//! Parotsidis — SPAA 2019, arXiv:1905.09175): the DMPC model, an
//! instrumented MPC cluster simulator, and every algorithm the paper
//! presents, verified and measured.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`mpc`] — the instrumented cluster simulator (machines, synchronous
//!   rounds, memory/communication metering, the Section 8 entropy metric).
//! * [`graph`] — graph substrate: dynamic graphs, update streams,
//!   generators, union-find, blossom maximum matching, Kruskal.
//! * [`eulertour`] — the paper's indexed Euler-tour arithmetic (Section 5,
//!   Figures 1–2) and sequential Euler-tour trees.
//! * [`core`] — DMPC model parameters, algorithm traits, experiment
//!   drivers, reporting.
//! * [`connectivity`] — dynamic connectivity + (1+eps)-MST (Section 5) and
//!   static baselines.
//! * [`matching`] — maximal matching (Section 3), 3/2-approximation
//!   (Section 4), (2+eps)-approximation (Section 6), static baseline.
//! * [`seqdyn`] / [`reduction`] — sequential dynamic algorithms and the
//!   Section 7 black-box reduction.
//! * [`service`] — the continuous-service front-end: clocked arrivals,
//!   windowed admission with backpressure, and per-op latency SLOs.
//!
//! ## Quickstart
//!
//! ```
//! use dmpc::core::{DmpcParams, DynamicGraphAlgorithm};
//! use dmpc::connectivity::DmpcConnectivity;
//! use dmpc::graph::Edge;
//!
//! let params = DmpcParams::new(16, 64);
//! let mut cc = DmpcConnectivity::new(params);
//! let m = cc.insert(Edge::new(0, 1));
//! assert!(m.clean() && m.rounds <= 4);
//! assert!(cc.connected(0, 1));
//! cc.delete(Edge::new(0, 1));
//! assert!(!cc.connected(0, 1));
//! ```

pub use dmpc_connectivity as connectivity;
pub use dmpc_core as core;
pub use dmpc_eulertour as eulertour;
pub use dmpc_graph as graph;
pub use dmpc_matching as matching;
pub use dmpc_mpc as mpc;
pub use dmpc_reduction as reduction;
pub use dmpc_seqdyn as seqdyn;
pub use dmpc_service as service;
