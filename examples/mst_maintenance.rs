//! Domain example: maintaining a (1+eps)-approximate minimum spanning tree
//! of a weighted network under link-cost changes, compared against Kruskal.
//!
//! Paper mapping: §5.1 ((1+eps)-MST via weight-bucketed Euler-tour
//! connectivity), **Table 1 row "(1+eps) MST"** — O(1) rounds, O(sqrt N)
//! active machines and communication per update.
//!
//! Run: `cargo run --release --example mst_maintenance` (finishes in
//! seconds).

use dmpc::connectivity::DmpcMst;
use dmpc::core::{DmpcParams, WeightedDynamicGraphAlgorithm};
use dmpc::graph::mst::msf_weight;
use dmpc::graph::streams::{self, WeightedUpdate};
use dmpc::graph::{Edge, Weight};

fn main() {
    let n = 48;
    let params = DmpcParams::new(n, 4 * n);
    let mut alg = DmpcMst::new(params, 0.1);
    let mut live: Vec<(Edge, Weight)> = Vec::new();

    let ups = streams::with_weights(&streams::churn_stream(n, 2 * n, 150, 0.5, 5), 500, 5);
    for (step, &u) in ups.iter().enumerate() {
        match u {
            WeightedUpdate::Insert(e, w) => {
                live.push((e, w));
                alg.insert(e, w);
            }
            WeightedUpdate::Delete(e) => {
                live.retain(|&(x, _)| x != e);
                alg.delete(e);
            }
        }
        if step % 50 == 49 {
            let got = alg.forest_weight();
            let exact = msf_weight(n, &live);
            println!(
                "update {:>3}: maintained MSF weight {:>6}, Kruskal {:>6}",
                step + 1,
                got,
                exact
            );
            // Without bucketed preprocessing the maintained forest is exact.
            assert_eq!(got, exact);
        }
    }
    println!("dynamic MSF tracked Kruskal exactly (approximation enters only");
    println!("via bucketed preprocessing, as the paper notes).");
}
