//! Domain example: road-network connectivity under closures.
//!
//! A grid "road network" suffers random road closures and re-openings; the
//! Section 5 algorithm answers reachability in O(1) rounds per change,
//! cross-checked against BFS recomputation.
//!
//! Paper mapping: §5 dynamic connectivity, **Table 1 row "Connected
//! comps"** — O(1) rounds, O(sqrt N) active machines and communication per
//! update, versus a full static recomputation on every change.
//!
//! Run: `cargo run --release --example road_network_connectivity` (finishes
//! in seconds).

use dmpc::connectivity::DmpcConnectivity;
use dmpc::core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc::graph::{generators, DynamicGraph, Edge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let (rows, cols) = (8, 8);
    let n = rows * cols;
    let roads = generators::grid(rows, cols);
    let params = DmpcParams::new(n, roads.len() + 8);

    let mut alg = DmpcConnectivity::new(params);
    alg.bulk_load(&roads);
    let mut g = DynamicGraph::from_edges(n, &roads);

    let mut rng = StdRng::seed_from_u64(99);
    let mut closed: Vec<Edge> = Vec::new();
    let mut worst = 0;
    for event in 0..120 {
        if !closed.is_empty() && rng.gen_bool(0.4) {
            let e = closed.swap_remove(rng.gen_range(0..closed.len()));
            g.insert(e).unwrap();
            worst = worst.max(alg.insert(e).rounds);
        } else {
            let open: Vec<Edge> = g.edges().collect();
            let e = open[rng.gen_range(0..open.len())];
            g.delete(e).unwrap();
            worst = worst.max(alg.delete(e).rounds);
            closed.push(e);
        }
        // Spot-check reachability against BFS.
        let (a, b) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
        assert_eq!(alg.connected(a, b), g.connected(a, b), "event {event}");
        if event % 30 == 29 {
            let comps = {
                let labels = g.components();
                let mut set = labels.clone();
                set.sort_unstable();
                set.dedup();
                set.len()
            };
            println!(
                "event {:>3}: {} roads closed, {} connected regions",
                event + 1,
                closed.len(),
                comps
            );
        }
    }
    println!("worst rounds per closure/re-opening: {worst} (O(1) by Table 1 row 4)");
}
