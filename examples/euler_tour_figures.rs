//! Reproduces the paper's Figures 1 and 2 exactly: the Euler tours, the
//! reroot, the insertion splice and the deletion split, with the [f,l]
//! brackets the figures annotate.
//!
//! Paper mapping: §5 (Euler-tour maintenance), **Figure 1** (tour before/after
//! `Insert(u,v)`) and **Figure 2** (tour split on `Delete(u,v)`), using the
//! figures' own worked vertex labels.
//!
//! Run: `cargo run --release --example euler_tour_figures` (finishes in
//! seconds).

use dmpc::eulertour::figures;

fn show(label: &str, tour: &dmpc::eulertour::ExplicitTour) {
    let seq: String = tour
        .seq()
        .iter()
        .map(|&v| figures::vertex_name(v))
        .collect::<Vec<char>>()
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!("{label}: [{seq}]");
    let mut vs: Vec<u32> = tour.seq().to_vec();
    vs.sort_unstable();
    vs.dedup();
    for v in vs {
        println!(
            "    {}: [{},{}]",
            figures::vertex_name(v),
            tour.f(v),
            tour.l(v)
        );
    }
}

fn main() {
    println!("=== Figure 1 ===");
    let (initial, rerooted, merged) = figures::fig1_explicit();
    show("(i) tour 1 (root b)", &initial[0]);
    show("(i) tour 2 (root a)", &initial[1]);
    show("(ii) tour 1 rerooted at e", &rerooted);
    show("(iii) after insert (e,g)", &merged);

    println!("\n=== Figure 2 ===");
    let (before, detached, remaining) = figures::fig2_explicit();
    show("(i) tour (root a)", &before);
    show("(iii) detached side after delete (a,b)", &detached);
    show("(iii) remaining side", &remaining);

    println!("\nThe indexed (distributed) representation produces identical");
    println!("index sets — see crates/eulertour/src/figures.rs golden tests.");
}
