//! Domain example: content-matching in an evolving social network.
//!
//! A preferential-attachment graph (heavy-tailed degrees — hubs go heavy)
//! receives a stream of follows/unfollows; the Section 4 algorithm keeps a
//! 3/2-approximate maximum matching at O(1) rounds per event, verified
//! against the exact blossom matching at checkpoints.
//!
//! Paper mapping: §4 (3/2-approximate matching by killing length-<=3
//! augmenting paths), **Table 1 row "3/2-app. matching"** — O(1) rounds,
//! O(n/sqrt N) active machines, O(sqrt N) communication per update.
//!
//! Run: `cargo run --release --example social_network_matching` (finishes in
//! seconds).

use dmpc::core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc::graph::maxmatch::maximum_matching_size;
use dmpc::graph::streams::{StreamBuilder, Update};
use dmpc::graph::DynamicGraph;
use dmpc::matching::DmpcThreeHalves;

fn main() {
    let n = 64;
    let params = DmpcParams::new(n, 6 * n);
    let mut alg = DmpcThreeHalves::new(params);
    let mut g = DynamicGraph::new(n);

    // Build an attachment-biased stream (the Section 4 algorithm starts
    // from the empty graph, so edges arrive as updates).
    let mut b = StreamBuilder::new(n, 7);
    for _ in 0..4 * n {
        b.random_insert();
    }
    for _ in 0..n {
        b.random_delete();
        b.random_insert();
    }
    let ups = b.build();

    let mut worst_rounds = 0;
    for (step, &u) in ups.iter().enumerate() {
        let m = match u {
            Update::Insert(e) => {
                g.insert(e).unwrap();
                alg.insert(e)
            }
            Update::Delete(e) => {
                g.delete(e).unwrap();
                alg.delete(e)
            }
        };
        worst_rounds = worst_rounds.max(m.rounds);
        if step % 64 == 63 {
            let got = alg.matching().size();
            let best = maximum_matching_size(&g);
            println!(
                "event {:>4}: |M| = {:>2}, maximum = {:>2}, ratio = {:.3}",
                step + 1,
                got,
                best,
                best as f64 / got.max(1) as f64
            );
            assert!(3 * got >= 2 * best, "3/2 guarantee violated");
        }
    }
    println!("worst rounds per event: {worst_rounds} (constant by Table 1 row 2)");
}
