//! Quickstart: maintain connectivity and a maximal matching dynamically,
//! and read off the paper's three cost metrics for each update.
//!
//! Paper mapping: §2's DMPC cost triple (rounds, active machines,
//! communication per round) measured live for the §3 maximal-matching and §5
//! connectivity algorithms — i.e. **Table 1 rows "Maximal matching" and
//! "Connected comps"** at toy scale.
//!
//! Run: `cargo run --release --example quickstart` (finishes in seconds).

use dmpc::connectivity::DmpcConnectivity;
use dmpc::core::{DmpcParams, DynamicGraphAlgorithm};
use dmpc::graph::Edge;
use dmpc::matching::DmpcMaximalMatching;

fn main() {
    let n = 32;
    let params = DmpcParams::new(n, 4 * n);
    println!(
        "DMPC deployment: N = {}, S = {} words, ~{} machines",
        params.input_size(),
        params.capacity_words(),
        params.storage_machines()
    );

    // Dynamic connectivity (paper Section 5).
    let mut cc = DmpcConnectivity::new(params);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (10, 11)] {
        let m = cc.insert(Edge::new(a, b));
        println!(
            "insert ({a},{b}): {} rounds, {} machines, {} words",
            m.rounds, m.max_active_machines, m.max_words_per_round
        );
    }
    println!("0 ~ 3: {}", cc.connected(0, 3));
    println!("0 ~ 10: {}", cc.connected(0, 10));
    let m = cc.delete(Edge::new(1, 2));
    println!(
        "delete (1,2): {} rounds, {} machines, {} words; 0 ~ 3 now {}",
        m.rounds,
        m.max_active_machines,
        m.max_words_per_round,
        cc.connected(0, 3)
    );

    // Dynamic maximal matching (paper Section 3).
    let mut mm = DmpcMaximalMatching::new(params);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
        mm.insert(Edge::new(a, b));
    }
    println!(
        "maximal matching after 4 inserts: {:?}",
        mm.matching().edges().collect::<Vec<_>>()
    );
    mm.delete(Edge::new(0, 1));
    println!(
        "after deleting (0,1): {:?}",
        mm.matching().edges().collect::<Vec<_>>()
    );
}
