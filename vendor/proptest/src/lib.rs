//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of the proptest API the dmpc test suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * strategies: half-open integer ranges (`0u32..16`), [`any::<T>()`](any)
//!   for primitives, tuples of strategies (arity 2–5), and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Semantics: each `#[test]` body runs `cases` times with inputs drawn from a
//! deterministic per-case SplitMix64 stream, so failures are reproducible
//! run-to-run. Unlike real proptest there is **no shrinking** — a failing
//! case reports the panic message of the raw sample. Swapping the real
//! proptest back in requires no source changes, only a `Cargo.toml` edit.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(8))]
//!     // In a test module this would also carry #[test].
//!     fn addition_commutes((a, b) in (0u32..1000, 0u32..1000)) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use core::marker::PhantomData;
use core::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure value usable with `?` inside `proptest!` bodies, mirroring
/// `proptest::test_runner::TestCaseError`. The stub treats every variant as
/// a hard failure (there is no rejection/retry machinery).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
}

impl TestCaseError {
    pub fn fail<T: Into<String>>(reason: T) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "test case failed: {reason}"),
        }
    }
}

/// Deterministic SplitMix64 stream used to draw test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of test inputs. The stub keeps only the sampling half of the
/// real trait — no shrink trees.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker for types with a full-domain [`any`] strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Property-failure assert; panics (there is no shrink/reject machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property-failure equality assert.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(
                    0x5EED ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                // Bodies may use `?` with TestCaseError, as in real proptest.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("proptest case {case} failed: {err}");
                }
            }
        }
    )*};
}

/// The `proptest!` block macro: wraps each contained `#[test] fn f(x in
/// strategy) { .. }` in a loop over `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { <$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_mix_strategies((a, b, c) in (0u32..5, any::<bool>(), 1u64..9)) {
            prop_assert!(a < 5);
            prop_assert!((1..9).contains(&c));
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }
}
