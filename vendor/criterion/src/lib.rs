//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of the criterion API the `dmpc-bench` benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] with [`BenchmarkId`], and
//! [`Bencher::iter`].
//!
//! `cargo bench` genuinely runs: each benchmark is timed over `sample_size`
//! samples after a short warm-up, and median / min / max per-iteration times
//! are printed. There is no statistical analysis, plotting, or baseline
//! comparison — swap the real criterion back in (a `Cargo.toml`-only change)
//! when network access is available and those are needed.
//!
//! ```
//! use criterion::{Criterion, BenchmarkId};
//! let mut c = Criterion::default().sample_size(5).noop_for_tests();
//! let mut g = c.benchmark_group("demo");
//! g.bench_function(BenchmarkId::new("sum", 10), |b| {
//!     b.iter(|| (0..10u64).sum::<u64>())
//! });
//! g.finish();
//! ```

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    n_samples: usize,
    iters_per_sample: u64,
    noop: bool,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-sample wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.noop {
            std::hint::black_box(f());
            return;
        }
        // Warm-up, and pick an iteration count that puts one sample in the
        // ~10ms range so cheap closures are not swamped by timer noise.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    noop: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            noop: false,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run each closure exactly once without timing — keeps doctests and
    /// smoke tests fast. (Stub-only; not part of the real criterion API.)
    pub fn noop_for_tests(mut self) -> Self {
        self.noop = true;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Ungrouped benchmark (top-level `c.bench_function`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let sample_size = self.sample_size;
        let noop = self.noop;
        run_one(&id.to_string(), sample_size, noop, f);
    }
}

/// A named collection of benchmarks sharing the runner's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.sample_size, self.criterion.noop, f);
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, noop: bool, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        n_samples: sample_size,
        iters_per_sample: 1,
        noop,
    };
    f(&mut b);
    if noop {
        return;
    }
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let (lo, hi) = (
        b.samples.first().copied().unwrap_or_default(),
        b.samples.last().copied().unwrap_or_default(),
    );
    println!("{label:<48} median {median:>12?}  [{lo:?} .. {hi:?}]  ({sample_size} samples)");
}

/// Mirrors `criterion_group! { name = ...; config = ...; targets = ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Mirrors `criterion_main!` — emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_closure() {
        let mut calls = 0usize;
        let mut c = Criterion::default().sample_size(3).noop_for_tests();
        let mut g = c.benchmark_group("t");
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dyn", 64).to_string(), "dyn/64");
    }
}
