//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of the `rand 0.8` API that the dmpc
//! crates actually use: [`Rng::gen`], [`Rng::gen_range`] (half-open integer
//! ranges), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and the
//! [`rngs::StdRng`] / [`rngs::SmallRng`] generator types.
//!
//! Both generators are a SplitMix64 stream — statistically fine for graph
//! generation and randomized tests, deterministic for a given seed, and *not*
//! cryptographically secure. Swapping the real `rand` back in requires no
//! source changes, only a `Cargo.toml` edit.
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x: u64 = rng.gen_range(0..100);
//! assert!(x < 100);
//! assert_eq!(x, rand::rngs::StdRng::seed_from_u64(7).gen_range(0..100));
//! ```

/// Low-level source of random `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_word(word: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_word(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn from_word(word: u64) -> Self {
        // 53 random mantissa bits in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_word(self.next_u64())
    }

    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        <f64 as Standard>::from_word(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator types mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    macro_rules! define_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name {
                state: u64,
            }

            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    splitmix64(&mut self.state)
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    // Pre-mix so that nearby seeds do not yield nearby streams.
                    let mut state = seed ^ 0x51_7C_C1_B7_27_22_0A_95;
                    splitmix64(&mut state);
                    Self { state }
                }
            }
        };
    }

    define_rng!(
        /// Deterministic stand-in for `rand::rngs::StdRng`.
        StdRng
    );
    define_rng!(
        /// Deterministic stand-in for `rand::rngs::SmallRng`.
        SmallRng
    );
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.gen_range(0u32..1000)).collect()
        };
        let b: Vec<u32> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.gen_range(0u32..1000)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..32).map(|_| r.gen_range(0u32..1000)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
